#include "core/mod_validator.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace xmlreval::core {

using automata::Symbol;
using automata::Verdict;
using schema::kInvalidType;
using xml::DeltaKind;
using xml::TrieCursor;

ModValidator::ModValidator(const TypeRelations* relations,
                           const Options& options)
    : relations_(relations),
      options_(options),
      cast_(relations, options.cast) {
  XMLREVAL_CHECK(relations != nullptr, "ModValidator requires relations");
}

struct ModValidator::Walk {
  const TypeRelations& rel;
  const Schema& source;
  const Schema& target;
  const xml::Document& doc;
  const xml::ModificationIndex& mods;
  const CastValidator& cast;
  bool use_incremental;
  // Document bound to the schema pair's alphabet: project child sequences
  // through the editor's symbol-level Proj_old/Proj_new, no string lookups.
  bool use_symbols;
  ValidationReport report;
  std::vector<uint32_t> path;

  void Fail(std::string message) {
    report.valid = false;
    report.violation = std::move(message);
    report.violation_path = xml::DeweyPath(path);
  }

  // Merges a sub-validator's report, rebasing its violation path onto the
  // current position.
  bool Absorb(const ValidationReport& sub) {
    report.counters += sub.counters;
    if (!sub.valid && report.valid) {
      report.valid = false;
      report.violation = sub.violation;
      std::vector<uint32_t> abs = path;
      for (uint32_t c : sub.violation_path.components()) abs.push_back(c);
      report.violation_path = xml::DeweyPath(std::move(abs));
    }
    return sub.valid;
  }

  /// Current-tree symbol of element `c` (no Δ projection).
  Symbol SymbolOf(xml::NodeId c) const {
    if (use_symbols) return doc.symbol(c);
    auto sym = source.alphabet()->Find(doc.label(c));
    return sym ? *sym : automata::kUnboundSymbol;
  }

  /// Proj_old symbol of child `c`: nullopt = ε (inserted / never existed),
  /// kUnboundSymbol = label outside Σ.
  std::optional<Symbol> OldSymbolOf(xml::NodeId c) const {
    if (use_symbols) return mods.OldSymbol(doc, c);
    std::optional<std::string> label = mods.OldLabel(doc, c);
    if (!label) return std::nullopt;
    auto sym = source.alphabet()->Find(*label);
    return sym ? *sym : automata::kUnboundSymbol;
  }

  /// Proj_new symbol of child `c`: nullopt = ε (deleted), kUnboundSymbol =
  /// label outside Σ.
  std::optional<Symbol> NewSymbolOf(xml::NodeId c) const {
    if (use_symbols) return mods.NewSymbol(doc, c);
    std::optional<std::string> label = mods.NewLabel(doc, c);
    if (!label) return std::nullopt;
    auto sym = source.alphabet()->Find(*label);
    return sym ? *sym : automata::kUnboundSymbol;
  }

  // Case 3: a freshly inserted subtree — full validation against the
  // target type, but Δ-aware: descendants deleted within the same edit
  // session (never_existed nodes) are skipped.
  bool ValidateInserted(xml::NodeId node, TypeId t_type) {
    ++report.counters.nodes_visited;
    ++report.counters.elements_visited;

    if (target.IsSimple(t_type)) {
      std::string value;
      uint32_t ordinal = 0;
      for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
           c = doc.next_sibling(c), ++ordinal) {
        if (mods.IsDeleted(c)) continue;
        if (doc.IsElement(c)) {
          path.push_back(ordinal);
          Fail(StrCat("element '", doc.label(c),
                      "' not allowed under simple-typed '", doc.label(node),
                      "'"));
          path.pop_back();
          return false;
        }
        ++report.counters.nodes_visited;
        ++report.counters.text_nodes_visited;
        value += doc.text(c);
      }
      ++report.counters.simple_checks;
      Status check =
          schema::ValidateSimpleValue(target.simple_type(t_type), value);
      if (!check.ok()) {
        Fail(StrCat("element '", doc.label(node), "': ", check.message()));
        return false;
      }
      return true;
    }

    const schema::ComplexType& t_decl = target.complex_type(t_type);
    if (!t_decl.open_attributes) {
      ++report.counters.attr_checks;
      Status attrs =
          schema::ValidateTypeAttributes(t_decl, doc.attributes(node));
      if (!attrs.ok()) {
        Fail(StrCat("element '", doc.label(node), "': ", attrs.message()));
        return false;
      }
    }

    const automata::Dfa* dfa = rel.TargetDfa(t_type);
    automata::StateId q = dfa->start_state();
    std::vector<xml::NodeId> children;
    std::vector<Symbol> symbols;
    std::vector<uint32_t> ordinals;
    uint32_t ordinal = 0;
    for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
         c = doc.next_sibling(c), ++ordinal) {
      if (mods.IsDeleted(c)) continue;
      if (doc.IsText(c)) {
        ++report.counters.nodes_visited;
        ++report.counters.text_nodes_visited;
        if (!IsAllXmlWhitespace(doc.text(c))) {
          path.push_back(ordinal);
          Fail(StrCat("character data not allowed under '", doc.label(node),
                      "' (element-only content)"));
          path.pop_back();
          return false;
        }
        continue;
      }
      Symbol sym = SymbolOf(c);
      if (sym >= dfa->alphabet_size() ||
          target.ChildType(t_type, sym) == kInvalidType) {
        path.push_back(ordinal);
        Fail(StrCat("element '", doc.label(c),
                    "' not allowed by target type '", target.TypeName(t_type),
                    "'"));
        path.pop_back();
        return false;
      }
      q = dfa->Next(q, sym);
      ++report.counters.dfa_steps;
      children.push_back(c);
      symbols.push_back(sym);
      ordinals.push_back(ordinal);
    }
    if (!dfa->IsAccepting(q)) {
      Fail(StrCat("children of inserted '", doc.label(node),
                  "' do not match the content model of target type '",
                  target.TypeName(t_type), "'"));
      return false;
    }
    for (size_t i = 0; i < children.size(); ++i) {
      path.push_back(ordinals[i]);
      bool ok =
          ValidateInserted(children[i], target.ChildType(t_type, symbols[i]));
      path.pop_back();
      if (!ok) return false;
    }
    return true;
  }

  // The §4.3 three-phase scan in one direction: `single`/`pair`/`sdfa`
  // must all belong to that direction (forward automata with the original
  // sequences, or reverse automata with the reversed sequences).
  // `boundary` = count of trailing symbols of new_syms that are unmodified.
  bool ThreePhase(xml::NodeId node, TypeId t_type,
                  const automata::ImmediateDfa* pair,
                  const automata::ImmediateDfa* single,
                  const automata::Dfa* plain_target,
                  const automata::Dfa* sdfa,
                  std::span<const Symbol> old_syms,
                  std::span<const Symbol> new_syms, size_t suffix,
                  bool* accepted) {
    size_t i = new_syms.size() - suffix;

    // Phase 1: b_immed over the edited prefix.
    automata::StateId qb;
    if (single != nullptr) {
      automata::ImmediateRunResult p1 = single->Run(new_syms.subspan(0, i));
      report.counters.dfa_steps += p1.symbols_scanned;
      if (p1.decided_early) {
        ++report.counters.immediate_decisions;
        *accepted = p1.verdict == Verdict::kAccept;
        if (!*accepted) {
          Fail(StrCat("children of '", doc.label(node),
                      "' do not match the content model of target type '",
                      target.TypeName(t_type), "'"));
        }
        return true;  // decided
      }
      qb = p1.final_state;
    } else {
      qb = plain_target->Run(new_syms.subspan(0, i));
      report.counters.dfa_steps += i;
    }

    // Phase 2: recover the source state before the unmodified suffix.
    automata::StateId qa =
        sdfa->Run(old_syms.subspan(0, old_syms.size() - suffix));

    // Phase 3: c_immed from (qa, qb) over the unmodified suffix.
    automata::StateId start = pair->pair_encoding().Encode(qa, qb);
    automata::ImmediateRunResult p3 = pair->Run(new_syms.subspan(i), start);
    report.counters.dfa_steps += p3.symbols_scanned;
    if (p3.decided_early) ++report.counters.immediate_decisions;
    *accepted = p3.verdict == Verdict::kAccept;
    if (!*accepted) {
      Fail(StrCat("children of '", doc.label(node),
                  "' do not match the content model of target type '",
                  target.TypeName(t_type), "'"));
    }
    return true;
  }

  // Content-model check for a MODIFIED node (case 4): decide
  // new_syms ∈ L(regexp_τ') knowing old_syms ∈ L(regexp_τ), via the §4.3
  // three-phase scan when the machinery is available, choosing the scan
  // direction by where the edits fall (reverse automata, when prebuilt,
  // handle the append-heavy case).
  bool CheckContent(xml::NodeId node, TypeId s_type, TypeId t_type,
                    bool s_complex, const std::vector<Symbol>& old_syms,
                    const std::vector<Symbol>& new_syms) {
    const automata::ImmediateDfa* pair =
        (use_incremental && s_complex) ? rel.PairAutomaton(s_type, t_type)
                                       : nullptr;
    const automata::ImmediateDfa* single = rel.SingleAutomaton(t_type);
    bool accepted = false;

    if (pair != nullptr) {
      // Unmodified prefix/suffix lengths; the edits fall between them.
      size_t limit = std::min(old_syms.size(), new_syms.size());
      size_t suffix = 0;
      while (suffix < limit &&
             old_syms[old_syms.size() - 1 - suffix] ==
                 new_syms[new_syms.size() - 1 - suffix]) {
        ++suffix;
      }
      size_t prefix = 0;
      while (prefix < limit && old_syms[prefix] == new_syms[prefix]) {
        ++prefix;
      }
      if (prefix + suffix > limit) suffix = limit - prefix;

      const automata::ImmediateDfa* rpair =
          (use_incremental && s_complex)
              ? rel.ReversePairAutomaton(s_type, t_type)
              : nullptr;
      if (rpair != nullptr && prefix > suffix) {
        // Backward scan: the common prefix becomes the unmodified suffix
        // of the reversed sequences.
        std::vector<Symbol> old_rev(old_syms.rbegin(), old_syms.rend());
        std::vector<Symbol> new_rev(new_syms.rbegin(), new_syms.rend());
        if (ThreePhase(node, t_type, rpair,
                       rel.ReverseSingleAutomaton(t_type),
                       /*plain_target=*/nullptr,
                       rel.ReverseSourceDfa(s_type), old_rev, new_rev,
                       prefix, &accepted)) {
          return accepted;
        }
      }
      if (ThreePhase(node, t_type, pair, single, rel.TargetDfa(t_type),
                     rel.SourceDfa(s_type), old_syms, new_syms, suffix,
                     &accepted)) {
        return accepted;
      }
    } else if (single != nullptr) {
      automata::ImmediateRunResult run = single->Run(new_syms);
      report.counters.dfa_steps += run.symbols_scanned;
      if (run.decided_early) ++report.counters.immediate_decisions;
      accepted = run.verdict == Verdict::kAccept;
    } else {
      const automata::Dfa* dfa = rel.TargetDfa(t_type);
      automata::StateId q = dfa->start_state();
      for (Symbol sym : new_syms) {
        q = dfa->Next(q, sym);
        ++report.counters.dfa_steps;
      }
      accepted = dfa->IsAccepting(q);
    }

    if (!accepted) {
      Fail(StrCat("children of '", doc.label(node),
                  "' do not match the content model of target type '",
                  target.TypeName(t_type), "'"));
    }
    return accepted;
  }

  // Cases 1 and 4 dispatcher for a node that exists in T' (not deleted).
  // `s_type` is the node's type under the source schema, or kInvalidType
  // when the node has no source history (only for inserted nodes, which
  // the caller routes to ValidateInserted instead).
  bool ValidateNode(xml::NodeId node, TypeId s_type, TypeId t_type,
                    TrieCursor cursor) {
    // Case 1: untouched subtree — plain §3.2 schema-cast validation.
    if (cursor.Null()) {
      return Absorb(cast.ValidateSubtree(doc, node, s_type, t_type));
    }

    ++report.counters.nodes_visited;
    ++report.counters.elements_visited;

    // Case 4: the node (or something below it) changed; its own content
    // must be re-verified against τ'.
    if (target.IsSimple(t_type)) {
      std::string value;
      uint32_t ordinal = 0;
      for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
           c = doc.next_sibling(c), ++ordinal) {
        if (mods.IsDeleted(c)) continue;
        if (doc.IsElement(c)) {
          path.push_back(ordinal);
          Fail(StrCat("element '", doc.label(c),
                      "' not allowed under simple-typed '", doc.label(node),
                      "'"));
          path.pop_back();
          return false;
        }
        ++report.counters.nodes_visited;
        ++report.counters.text_nodes_visited;
        value += doc.text(c);
      }
      ++report.counters.simple_checks;
      Status check =
          schema::ValidateSimpleValue(target.simple_type(t_type), value);
      if (!check.ok()) {
        Fail(StrCat("element '", doc.label(node), "': ", check.message()));
        return false;
      }
      return true;
    }

    // Complex τ': attributes are re-checked on the modified spine (edits
    // to the tree may be accompanied by a type whose attribute policy
    // differs), then the child sequence is projected both ways.
    const schema::ComplexType& t_decl = target.complex_type(t_type);
    if (!t_decl.open_attributes) {
      ++report.counters.attr_checks;
      Status attr_check =
          schema::ValidateTypeAttributes(t_decl, doc.attributes(node));
      if (!attr_check.ok()) {
        Fail(StrCat("element '", doc.label(node), "': ",
                    attr_check.message()));
        return false;
      }
    }
    bool s_complex = s_type != kInvalidType && source.IsComplex(s_type);
    std::vector<Symbol> old_syms;        // Proj_old: skips inserted
    std::vector<Symbol> new_syms;        // Proj_new: skips deleted
    std::vector<xml::NodeId> live;       // children to recurse into
    std::vector<Symbol> live_new_syms;   // label symbol in T'
    std::vector<Symbol> live_old_syms;   // label symbol in T (or invalid)
    std::vector<uint32_t> live_ordinals;
    std::vector<bool> live_inserted;

    uint32_t ordinal = 0;
    for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
         c = doc.next_sibling(c), ++ordinal) {
      DeltaKind kind = mods.Kind(c);
      if (doc.IsText(c)) {
        if (kind == DeltaKind::kDeleted) continue;
        ++report.counters.nodes_visited;
        ++report.counters.text_nodes_visited;
        if (!IsAllXmlWhitespace(doc.text(c))) {
          path.push_back(ordinal);
          Fail(StrCat("character data not allowed under '", doc.label(node),
                      "' (element-only content in target type '",
                      target.TypeName(t_type), "')"));
          path.pop_back();
          return false;
        }
        continue;
      }

      std::optional<Symbol> old_sym = OldSymbolOf(c);
      if (old_sym) {
        if (*old_sym == automata::kUnboundSymbol) {
          Fail(StrCat("internal: original label '",
                      mods.OldLabel(doc, c).value_or(std::string(doc.label(c))),
                      "' missing from the alphabet"));
          return false;
        }
        old_syms.push_back(*old_sym);
      }
      if (kind == DeltaKind::kDeleted) {
        // Deleted child: its label fed Proj_old; count the read.
        ++report.counters.nodes_visited;
        ++report.counters.elements_visited;
        continue;
      }
      std::optional<Symbol> new_sym = NewSymbolOf(c);
      XMLREVAL_CHECK(new_sym.has_value(), "live node must have a label");
      if (*new_sym == automata::kUnboundSymbol) {
        path.push_back(ordinal);
        Fail(StrCat("element '", doc.label(c),
                    "' is outside the schemas' alphabet"));
        path.pop_back();
        return false;
      }
      new_syms.push_back(*new_sym);
      live.push_back(c);
      live_new_syms.push_back(*new_sym);
      live_old_syms.push_back(old_sym ? old_syms.back()
                                      : automata::kInvalidSymbol);
      live_ordinals.push_back(ordinal);
      live_inserted.push_back(kind == DeltaKind::kInserted);
    }

    if (!CheckContent(node, s_type, t_type, s_complex, old_syms, new_syms)) {
      return false;
    }

    // Recurse per live child with (types_τ(Proj_old), types_τ'(Proj_new)).
    for (size_t i = 0; i < live.size(); ++i) {
      TypeId t_child = target.ChildType(t_type, live_new_syms[i]);
      if (t_child == kInvalidType) {
        Fail(StrCat("internal: accepted content string uses untyped label '",
                    doc.label(live[i]), "'"));
        return false;
      }
      path.push_back(live_ordinals[i]);
      bool ok;
      if (live_inserted[i] || !s_complex ||
          live_old_syms[i] == automata::kInvalidSymbol) {
        // No usable source knowledge: validate explicitly.
        ok = ValidateInserted(live[i], t_child);
      } else {
        TypeId s_child = source.ChildType(s_type, live_old_syms[i]);
        if (s_child == kInvalidType) {
          Fail(StrCat("precondition violated: source type '",
                      source.TypeName(s_type),
                      "' does not type child label '",
                      source.alphabet()->Name(live_old_syms[i]), "'"));
          path.pop_back();
          return false;
        }
        ok = ValidateNode(live[i], s_child, t_child,
                          cursor.Descend(live_ordinals[i]));
      }
      path.pop_back();
      if (!ok) return false;
    }
    return true;
  }
};

ValidationReport ModValidator::Validate(
    const xml::Document& doc, const xml::ModificationIndex& mods) const {
  // One span per document — the §3.3 Δ-pruned traversal. subtrees_skipped
  // in the attached args is the modified()-pruning the paper's CastWithMods
  // scaling claim rests on.
  obs::Span span("cast_with_mods.traverse");
  Walk walk{*relations_,
            relations_->source(),
            relations_->target(),
            doc,
            mods,
            cast_,
            options_.use_incremental_content,
            doc.BoundTo(*relations_->source().alphabet()),
            {},
            {}};
  if (!doc.has_root()) {
    walk.Fail("document has no root element");
    return std::move(walk.report);
  }
  xml::NodeId root = doc.root();
  const Schema& source = relations_->source();
  const Schema& target = relations_->target();

  std::optional<Symbol> new_sym = walk.NewSymbolOf(root);
  XMLREVAL_CHECK(new_sym.has_value(), "document root cannot be deleted");

  TypeId t_root = *new_sym != automata::kUnboundSymbol
                      ? target.RootType(*new_sym)
                      : kInvalidType;
  if (t_root == kInvalidType) {
    ++walk.report.counters.nodes_visited;
    ++walk.report.counters.elements_visited;
    walk.Fail(StrCat("root element '", doc.label(root),
                     "' is not declared by the target schema"));
    return std::move(walk.report);
  }

  std::optional<Symbol> old_sym = walk.OldSymbolOf(root);
  if (mods.IsInserted(root) || !old_sym) {
    walk.ValidateInserted(root, t_root);
    return std::move(walk.report);
  }

  TypeId s_root = *old_sym != automata::kUnboundSymbol
                      ? source.RootType(*old_sym)
                      : kInvalidType;
  if (s_root == kInvalidType) {
    walk.Fail(StrCat("precondition violated: original root '",
                     mods.OldLabel(doc, root).value_or(
                         std::string(doc.label(root))),
                     "' is not declared by the source schema"));
    return std::move(walk.report);
  }

  walk.ValidateNode(root, s_root, t_root, mods.Cursor());
  AttachTraceArgs(span, walk.report.counters);
  return std::move(walk.report);
}

}  // namespace xmlreval::core
