// Document correction — the paper's stated future work (§7): "exploring
// how a system may automatically correct a document valid according to one
// schema so that it conforms to a new schema."
//
// Given a document valid under the source schema and the precomputed
// TypeRelations, DocumentCorrector::Correct computes and applies an edit
// script (through xml::DocumentEditor, so the repair itself is Δ-encoded
// and incrementally re-verifiable) after which the document is valid under
// the target schema:
//
//   * subsumed subtrees are untouched (nothing to fix),
//   * invalid simple values are rewritten to a minimal value of the target
//     simple type,
//   * each content model that no longer matches is repaired with a
//     MINIMUM-OPERATION child-list edit (inserts and deletes; a relabel is
//     expressed as delete+insert) against the target DFA, found by 0-1 BFS
//     over (input position × DFA state); inserted elements are
//     materialized as minimum-size valid subtrees of their target type
//     (sizes from a Bellman-Ford-style fixpoint over the schema, so the
//     recursion provably terminates on productive types),
//   * children kept by the repair are corrected recursively against their
//     (source, target) type pair.
//
// Minimality is per content model (fewest child-list operations), not
// global over the tree — global minimality would have to weigh deleting a
// subtree against the cascade of repairs inside it, which is the open part
// of the problem the paper leaves open. The guarantee provided is
// soundness: after Correct returns OK, full target-validation succeeds
// (property-tested in corrector_test.cc).

#ifndef XMLREVAL_CORE_CORRECTOR_H_
#define XMLREVAL_CORE_CORRECTOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/relations.h"
#include "xml/editor.h"
#include "xml/tree.h"

namespace xmlreval::core {

/// One repair applied to the document.
struct CorrectionStep {
  enum class Kind : uint8_t {
    kRewriteText,      // simple value replaced
    kInsertElement,    // missing required element materialized
    kDeleteSubtree,    // disallowed subtree removed
    kSetAttribute,     // required/invalid attribute (re)written
    kRemoveAttribute,  // undeclared attribute dropped
  };
  Kind kind;
  /// Dewey path (in the Δ-encoded tree) of the affected node.
  std::string where;
  std::string detail;
};

struct CorrectionReport {
  std::vector<CorrectionStep> steps;
  bool changed() const { return !steps.empty(); }
};

class DocumentCorrector {
 public:
  struct Options {
    /// Upper bound on string-repair search states per content model — a
    /// safety valve against pathological DFAs. Repair fails with
    /// kFailedPrecondition when exceeded.
    size_t max_search_states = 200000;
  };

  /// `relations` must outlive the corrector. Construction precomputes the
  /// minimum-valid-subtree size of every target type.
  explicit DocumentCorrector(const TypeRelations* relations)
      : DocumentCorrector(relations, Options{}) {}
  DocumentCorrector(const TypeRelations* relations, const Options& options);

  /// Corrects `doc` (valid under the source schema) in place so that it
  /// becomes valid under the target schema, committing the edits. The
  /// report lists every repair.
  Result<CorrectionReport> Correct(xml::Document* doc) const;

  /// As Correct, but drives the caller's editor and does NOT commit, so
  /// the repair stays Δ-encoded for inspection or incremental re-check.
  Result<CorrectionReport> CorrectWithEditor(xml::Document* doc,
                                             xml::DocumentEditor* editor) const;

  /// Size (in nodes) of the smallest tree valid for target type `t`;
  /// nullopt for non-productive types. Exposed for tests.
  std::optional<uint64_t> MinimalSubtreeSize(TypeId t) const;

 private:
  struct Walk;

  const TypeRelations* relations_;
  Options options_;
  /// Per target type: node count of the minimum valid subtree (kInf when
  /// non-productive).
  std::vector<uint64_t> min_tree_cost_;
};

/// Minimum-operation edit of `word` so that `dfa` accepts it.
/// Exposed for tests and for callers repairing raw content strings.
struct StringEditOp {
  enum class Kind : uint8_t { kKeep, kInsert, kDelete };
  Kind kind;
  /// Position in the ORIGINAL word (for kInsert: the index the new symbol
  /// is inserted before, which may equal word.size()).
  size_t position;
  /// The symbol written (kInsert) or kept (kKeep); unused for kDelete.
  automata::Symbol symbol;
};

/// Computes a minimum-length op sequence (inserts + deletes; keeps are
/// free) making `word` accepted by `dfa`. Symbols may only be inserted
/// when `insertable` marks them (pass all-true to allow any); this is how
/// the corrector keeps inserted labels within the productive Σ_τ'. Fails
/// when no repair exists or the search exceeds `max_states`.
Result<std::vector<StringEditOp>> MinimalStringRepair(
    const automata::Dfa& dfa, std::span<const automata::Symbol> word,
    const std::vector<bool>& insertable, size_t max_states = 200000);

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_CORRECTOR_H_
