// CastWalk — the per-unit engine behind both cast validators (internal).
//
// ProcessUnit is the body of §3.2's validate(τ, τ', e) for ONE node: the
// subsumed/disjoint short-circuits, the simple-value or content-model
// check, and the child-typing pass that pushes the children onto the
// frontier in reverse document order (so a LIFO pop yields preorder).
// CastValidator drains one frontier on one thread; ParallelCastValidator
// runs the same code over donated frontier slices on many. Keeping the
// node-level logic in one place is what makes the two engines' verdicts,
// paths, and counters bit-identical.
//
// Counting discipline matches report.h: a node is visited once, at entry —
// in serial mode that entry is the unit's pop; in prune_subsumed_at_push
// mode a subsumed child's entry is charged at push time instead (same
// totals, but the child never becomes a frontier unit, which is what keeps
// subsumed subtrees from ever becoming parallel tasks).
//
// Failure protocol: ProcessUnit returns false with fail_node / fail_message
// set; it never materializes a Dewey path (the caller reconstructs one
// lazily, only for the failure it actually reports).

#ifndef XMLREVAL_CORE_CAST_WALK_H_
#define XMLREVAL_CORE_CAST_WALK_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/cast_validator.h"
#include "core/relations.h"
#include "core/report.h"
#include "schema/simple_types.h"
#include "xml/tree.h"

namespace xmlreval::core::internal {

struct CastWalk {
  const TypeRelations& rel;
  const Schema& source;
  const Schema& target;
  const xml::Document& doc;
  bool use_immediate;
  // True when the document is bound to the schema pair's alphabet: node
  // symbols are read directly (zero hashing, zero allocation); otherwise
  // each label is resolved through Alphabet::Find as before.
  bool use_symbols;
  // Raw SoA column pointers of `doc` (xml/tree.h): the walk's inner loops
  // stride dense int32 arrays directly instead of calling through the
  // Document accessors, and software-prefetch the next sibling's row.
  // Safe for the walk's lifetime — validation never creates nodes.
  const xml::Document::HotView hv = doc.hot_view();
  // Parallel mode: subsumed children are counted and dropped at push time
  // instead of being pushed for an O(1) pop.
  bool prune_subsumed_at_push = false;
  ValidationCounters counters;
  // Reusable buffer for multi-text-chunk simple values (CastScratch).
  std::string* simple_value = nullptr;

  // Set when ProcessUnit returns false. fail_node carries the node the
  // violation is REPORTED AT (the parent, for poisoned child units).
  xml::NodeId fail_node = xml::kInvalidNode;
  std::string fail_message;

  bool Fail(xml::NodeId node, std::string message) {
    fail_node = node;
    fail_message = std::move(message);
    return false;
  }

  /// Symbol of element `c`: the bound symbol when use_symbols, else a
  /// Find() with misses mapped to kUnboundSymbol (which matches nothing).
  automata::Symbol SymbolOf(xml::NodeId c) const {
    if (use_symbols) return hv.symbol[c];
    auto sym = source.alphabet()->Find(doc.label(c));
    return sym ? *sym : automata::kUnboundSymbol;
  }

  bool ContentFail(xml::NodeId node, TypeId t_type) {
    return Fail(node,
                StrCat("children of '", doc.label(node),
                       "' do not match the content model of target type '",
                       target.TypeName(t_type), "'"));
  }

  /// validate(τ, τ', e) for one frontier unit. Pushes the unit's element
  /// children onto *frontier (reverse document order: first child on top).
  /// Returns false on failure with fail_node/fail_message set.
  bool ProcessUnit(const CastUnit& unit, std::vector<CastUnit>* frontier) {
    const xml::NodeId node = unit.node;

    // Poisoned units: the failure was detected while expanding the parent
    // but is deferred to the child's document-order position, so every
    // earlier subtree gets validated (and can fail) first — exactly the
    // recursive algorithm's report order. The parent's entry counters were
    // charged when IT was processed; a poisoned child charges nothing.
    switch (unit.kind) {
      case CastUnitKind::kValidate:
        break;
      case CastUnitKind::kUnboundLabel:
        return Fail(doc.parent(node),
                    StrCat("element '", doc.label(node),
                           "' is outside the schemas' alphabet"));
      case CastUnitKind::kContentMismatch:
        // A label beyond an immediate-accept decision point fell outside
        // Σ_τ', contradicting content-model membership.
        return ContentFail(doc.parent(node), unit.target_type);
      case CastUnitKind::kPrecondition:
        return Fail(doc.parent(node),
                    StrCat("precondition violated: source type '",
                           source.TypeName(unit.source_type),
                           "' does not type child label '", doc.label(node),
                           "'"));
    }

    const TypeId s_type = unit.source_type;
    const TypeId t_type = unit.target_type;
    ++counters.nodes_visited;
    ++counters.elements_visited;

    // if τ ≤ τ' return true — the whole subtree is guaranteed valid.
    if (rel.Subsumed(s_type, t_type)) {
      ++counters.subtrees_skipped;
      return true;
    }
    // if τ ⊘ τ' return false — no tree valid for τ can be valid for τ'.
    if (rel.Disjoint(s_type, t_type)) {
      ++counters.disjoint_rejects;
      return Fail(node, StrCat("element '", doc.label(node),
                               "': source type '", source.TypeName(s_type),
                               "' is disjoint from target type '",
                               target.TypeName(t_type), "'"));
    }

    if (target.IsSimple(t_type)) {
      // Source validity rules out element children (a complex source type
      // would be disjoint from the simple target and caught above; a simple
      // source type has no element children). Check the χ value. The
      // overwhelmingly common shape is a single text child, validated as a
      // string_view straight out of the tree; multi-chunk values are
      // stitched into the reusable scratch buffer.
      size_t text_count = 0;
      xml::NodeId only_text = xml::kInvalidNode;
      for (xml::NodeId c = hv.first_child[node]; c != xml::kInvalidNode;
           c = hv.next_sibling[c]) {
        if (hv.IsText(c)) {
          ++counters.nodes_visited;
          ++counters.text_nodes_visited;
          if (++text_count == 1) only_text = c;
        }
      }
      ++counters.simple_checks;
      Status check;
      if (text_count <= 1) {
        const std::string_view sv =
            text_count == 0 ? std::string_view()
                            : std::string_view(doc.text(only_text));
        const schema::SimpleType& st = target.simple_type(t_type);
        // Inline probe first: decides the hot shapes (unrestricted strings,
        // range-faceted integers) without the full checker's call + Status
        // machinery. Probe verdicts agree exactly with ValidateSimpleValue;
        // undecided and invalid values take the full check (the latter for
        // its diagnostic).
        if (schema::ProbeSimpleValue(st, sv) > 0) return true;
        check = schema::ValidateSimpleValue(st, sv);
      } else {
        simple_value->clear();
        for (xml::NodeId c = hv.first_child[node]; c != xml::kInvalidNode;
             c = hv.next_sibling[c]) {
          if (hv.IsText(c)) *simple_value += doc.text(c);
        }
        check = schema::ValidateSimpleValue(target.simple_type(t_type),
                                            *simple_value);
      }
      if (!check.ok()) {
        return Fail(node,
                    StrCat("element '", doc.label(node), "': ",
                           check.message()));
      }
      return true;
    }

    // Complex target (and complex source, else the pair would be disjoint).
    // Attribute constraints of τ' are re-checked here: the source's
    // guarantees about attributes do not transfer (the pair was neither
    // subsumed nor disjoint).
    const schema::ComplexType& t_decl = target.complex_type(t_type);
    if (!t_decl.open_attributes) {
      ++counters.attr_checks;
      // Declares nothing + carries nothing = provably OK: the full check
      // would walk two empty containers. Common enough (structural wrapper
      // elements) that skipping the call is measurable.
      const std::vector<xml::Attribute>& node_attrs = doc.attributes(node);
      if (!t_decl.attributes.empty() || !node_attrs.empty()) {
        Status attrs = schema::ValidateTypeAttributes(t_decl, node_attrs);
        if (!attrs.ok()) {
          return Fail(node, StrCat("element '", doc.label(node), "': ",
                                   attrs.message()));
        }
      }
    }

    // Per §3.2's pseudocode: first decide the content-model membership,
    // then expand the children. Both passes stream over the sibling list;
    // when c_immed classifies the START state as immediate-accept — the
    // common case when the two content models coincide — the content pass
    // is skipped outright.
    const automata::ImmediateDfa* pair =
        use_immediate ? rel.PairAutomaton(s_type, t_type) : nullptr;
    const automata::Dfa* tdfa = rel.TargetDfa(t_type);

    // Content pass (the paper's "constructstring(children(e)) ∈ L?").
    bool decided = false;
    if (pair != nullptr &&
        pair->Class(pair->dfa().start_state()) ==
            automata::StateClass::kImmediateAccept) {
      ++counters.immediate_decisions;
      decided = true;
    }
    if (!decided) {
      automata::StateId q =
          pair ? pair->dfa().start_state() : tdfa->start_state();
      if (pair != nullptr &&
          pair->Class(q) == automata::StateClass::kImmediateReject) {
        ++counters.immediate_decisions;
        return ContentFail(node, t_type);
      }
      for (xml::NodeId c = hv.first_child[node];
           c != xml::kInvalidNode && !decided; c = hv.next_sibling[c]) {
        hv.PrefetchRow(hv.next_sibling[c]);
        if (!hv.IsElement(c)) continue;  // whitespace guaranteed by source
        automata::Symbol sym = SymbolOf(c);
        if (sym == automata::kUnboundSymbol) {
          return Fail(node, StrCat("element '", doc.label(c),
                                   "' is outside the schemas' alphabet"));
        }
        if (pair != nullptr) {
          // Symbols interned after the relations were computed exceed the
          // padded transition table; they cannot match any content model.
          if (sym >= pair->dfa().alphabet_size()) {
            return ContentFail(node, t_type);
          }
          q = pair->dfa().Next(q, sym);
          ++counters.dfa_steps;
          automata::StateClass cls = pair->Class(q);
          if (cls == automata::StateClass::kImmediateAccept) {
            ++counters.immediate_decisions;
            decided = true;
          } else if (cls == automata::StateClass::kImmediateReject) {
            ++counters.immediate_decisions;
            return ContentFail(node, t_type);
          }
        } else {
          if (sym >= tdfa->alphabet_size()) return ContentFail(node, t_type);
          q = tdfa->Next(q, sym);
          ++counters.dfa_steps;
        }
      }
      if (!decided) {
        // End of string: for c_immed, acceptance of the product is
        // F_a × F_b, and the source component accepts by the precondition.
        bool accepted =
            pair ? pair->dfa().IsAccepting(q) : tdfa->IsAccepting(q);
        if (!accepted) return ContentFail(node, t_type);
      }
    }

    // Expansion pass, with (types_τ(λ), types_τ'(λ)) per child. Typing
    // failures become poisoned units at the child's position (see above);
    // the span pushed forward is reversed so the FIRST child pops first.
    const size_t mark = frontier->size();
    for (xml::NodeId c = hv.first_child[node]; c != xml::kInvalidNode;
         c = hv.next_sibling[c]) {
      hv.PrefetchRow(hv.next_sibling[c]);
      if (!hv.IsElement(c)) continue;
      automata::Symbol sym = SymbolOf(c);
      if (sym == automata::kUnboundSymbol) {
        frontier->push_back({c, s_type, t_type, CastUnitKind::kUnboundLabel});
        continue;
      }
      TypeId child_t = target.ChildType(t_type, sym);
      if (child_t == schema::kInvalidType) {
        frontier->push_back(
            {c, s_type, t_type, CastUnitKind::kContentMismatch});
        continue;
      }
      TypeId child_s = source.ChildType(s_type, sym);
      if (child_s == schema::kInvalidType) {
        frontier->push_back({c, s_type, t_type, CastUnitKind::kPrecondition});
        continue;
      }
      if (prune_subsumed_at_push && rel.Subsumed(child_s, child_t)) {
        // Entry counters the child would have charged at its own pop.
        ++counters.nodes_visited;
        ++counters.elements_visited;
        ++counters.subtrees_skipped;
        continue;
      }
      frontier->push_back({c, child_s, child_t, CastUnitKind::kValidate});
    }
    std::reverse(frontier->begin() + mark, frontier->end());
    return true;
  }
};

/// Shared root prologue of doValidate(S, S', T). On success fills *unit
/// with the root's CastUnit and returns true; otherwise fills *report
/// (prologue failures keep the recursive engine's exact counter and path
/// discipline) and returns false.
inline bool ResolveRootUnit(const TypeRelations& rel, const xml::Document& doc,
                            bool use_symbols, ValidationReport* report,
                            CastUnit* unit) {
  auto fail = [&](std::string message) {
    report->valid = false;
    report->violation = std::move(message);
    report->violation_path = xml::DeweyPath();
    return false;
  };
  if (!doc.has_root()) return fail("document has no root element");
  const Schema& source = rel.source();
  const Schema& target = rel.target();
  automata::Symbol sym;
  if (use_symbols) {
    sym = doc.symbol(doc.root());
  } else {
    auto found = source.alphabet()->Find(doc.label(doc.root()));
    sym = found ? *found : automata::kUnboundSymbol;
  }
  bool in_sigma = sym != automata::kUnboundSymbol;
  TypeId s_root = in_sigma ? source.RootType(sym) : schema::kInvalidType;
  TypeId t_root = in_sigma ? target.RootType(sym) : schema::kInvalidType;
  if (s_root == schema::kInvalidType) {
    return fail(StrCat("precondition violated: root '",
                       doc.label(doc.root()),
                       "' is not declared by the source schema"));
  }
  if (t_root == schema::kInvalidType) {
    ++report->counters.nodes_visited;
    ++report->counters.elements_visited;
    return fail(StrCat("root element '", doc.label(doc.root()),
                       "' is not declared by the target schema"));
  }
  *unit = {doc.root(), s_root, t_root, CastUnitKind::kValidate};
  return true;
}

}  // namespace xmlreval::core::internal

#endif  // XMLREVAL_CORE_CAST_WALK_H_
