#include "xml/tree.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace xmlreval::xml {

namespace internal {

uint32_t NodeColumns::PushRow(uint8_t flags, automata::Symbol symbol) {
  if (size_ == capacity_) Grow(size_ + 1);
  const uint32_t id = static_cast<uint32_t>(size_++);
  parent_[id] = kInvalidNode;
  first_child_[id] = kInvalidNode;
  last_child_[id] = kInvalidNode;
  next_sibling_[id] = kInvalidNode;
  prev_sibling_[id] = kInvalidNode;
  symbol_[id] = symbol;
  flags_[id] = flags;
  return id;
}

void NodeColumns::Grow(size_t min_capacity) {
  size_t cap = capacity_ == 0 ? 64 : capacity_ * 2;
  if (cap < min_capacity) cap = min_capacity;
  // One block, seven column slices. The five link columns and the symbol
  // column are uint32-aligned by construction (they come first); flags
  // trail as raw bytes.
  auto block = std::make_unique<unsigned char[]>(cap * kBytesPerRow);
  NodeId* parent = reinterpret_cast<NodeId*>(block.get());
  NodeId* first_child = parent + cap;
  NodeId* last_child = first_child + cap;
  NodeId* next_sibling = last_child + cap;
  NodeId* prev_sibling = next_sibling + cap;
  automata::Symbol* symbol =
      reinterpret_cast<automata::Symbol*>(prev_sibling + cap);
  uint8_t* flags = reinterpret_cast<uint8_t*>(symbol + cap);
  if (size_ != 0) {
    std::memcpy(parent, parent_, size_ * sizeof(NodeId));
    std::memcpy(first_child, first_child_, size_ * sizeof(NodeId));
    std::memcpy(last_child, last_child_, size_ * sizeof(NodeId));
    std::memcpy(next_sibling, next_sibling_, size_ * sizeof(NodeId));
    std::memcpy(prev_sibling, prev_sibling_, size_ * sizeof(NodeId));
    std::memcpy(symbol, symbol_, size_ * sizeof(automata::Symbol));
    std::memcpy(flags, flags_, size_ * sizeof(uint8_t));
  }
  block_ = std::move(block);
  capacity_ = cap;
  parent_ = parent;
  first_child_ = first_child;
  last_child_ = last_child;
  next_sibling_ = next_sibling;
  prev_sibling_ = prev_sibling;
  symbol_ = symbol;
  flags_ = flags;
}

void NodeColumns::MoveFrom(NodeColumns& o) {
  block_ = std::move(o.block_);
  size_ = o.size_;
  capacity_ = o.capacity_;
  parent_ = o.parent_;
  first_child_ = o.first_child_;
  last_child_ = o.last_child_;
  next_sibling_ = o.next_sibling_;
  prev_sibling_ = o.prev_sibling_;
  symbol_ = o.symbol_;
  flags_ = o.flags_;
  o.size_ = o.capacity_ = 0;
  o.parent_ = o.first_child_ = o.last_child_ = nullptr;
  o.next_sibling_ = o.prev_sibling_ = nullptr;
  o.symbol_ = nullptr;
  o.flags_ = nullptr;
}

std::string_view StringArena::Add(std::string_view s) {
  if (s.empty()) return std::string_view();
  if (s.size() > last_capacity_ - last_used_) {
    size_t chunk = std::max(s.size(), kChunkSize);
    chunks_.push_back(std::make_unique<char[]>(chunk));
    last_capacity_ = chunk;
    last_used_ = 0;
    allocated_ += chunk;
  }
  char* dst = chunks_.back().get() + last_used_;
  std::memcpy(dst, s.data(), s.size());
  last_used_ += s.size();
  used_ += s.size();
  return std::string_view(dst, s.size());
}

}  // namespace internal

NodeId Document::CreateElement(std::string_view label) {
  uint32_t id =
      cols_.PushRow(internal::kFlagAlive, ResolveSymbol(label));
  payload_.push_back(strings_.Add(label));
  attr_slot_.push_back(kNoAttrSlot);
  return static_cast<NodeId>(id);
}

NodeId Document::CreateText(std::string_view text) {
  uint32_t id = cols_.PushRow(internal::kFlagAlive | internal::kFlagText,
                              automata::kUnboundSymbol);
  payload_.push_back(strings_.Add(text));
  attr_slot_.push_back(kNoAttrSlot);
  return static_cast<NodeId>(id);
}

Status Document::CheckAttachable(NodeId node) const {
  if (!IsValidId(node)) return Status::InvalidArgument("invalid node id");
  if (!IsAlive(node)) {
    return Status::FailedPrecondition("node has been deleted");
  }
  if (parent(node) != kInvalidNode || node == root_) {
    return Status::FailedPrecondition("node is already attached");
  }
  return Status::OK();
}

Status Document::SetRoot(NodeId node) {
  RETURN_IF_ERROR(CheckAttachable(node));
  if (!IsElement(node)) {
    return Status::InvalidArgument("document root must be an element");
  }
  if (root_ != kInvalidNode) {
    return Status::FailedPrecondition("document already has a root");
  }
  root_ = node;
  return Status::OK();
}

Status Document::AppendChild(NodeId parent, NodeId child) {
  if (!IsValidId(parent) || !IsElement(parent)) {
    return Status::InvalidArgument("parent must be a live element");
  }
  RETURN_IF_ERROR(CheckAttachable(child));
  NodeId* parents = cols_.parent();
  NodeId* firsts = cols_.first_child();
  NodeId* lasts = cols_.last_child();
  NodeId* nexts = cols_.next_sibling();
  NodeId* prevs = cols_.prev_sibling();
  const NodeId tail = lasts[parent];
  parents[child] = parent;
  prevs[child] = tail;
  nexts[child] = kInvalidNode;
  if (tail != kInvalidNode) {
    nexts[tail] = child;
  } else {
    firsts[parent] = child;
  }
  lasts[parent] = child;
  return Status::OK();
}

Status Document::InsertBefore(NodeId reference, NodeId node) {
  if (!IsAlive(reference)) {
    return Status::InvalidArgument("reference node is not live");
  }
  NodeId parent = cols_.parent()[reference];
  if (parent == kInvalidNode) {
    return Status::FailedPrecondition("reference node has no parent");
  }
  RETURN_IF_ERROR(CheckAttachable(node));
  NodeId* parents = cols_.parent();
  NodeId* firsts = cols_.first_child();
  NodeId* nexts = cols_.next_sibling();
  NodeId* prevs = cols_.prev_sibling();
  const NodeId before = prevs[reference];
  parents[node] = parent;
  nexts[node] = reference;
  prevs[node] = before;
  if (before != kInvalidNode) {
    nexts[before] = node;
  } else {
    firsts[parent] = node;
  }
  prevs[reference] = node;
  return Status::OK();
}

Status Document::InsertAfter(NodeId reference, NodeId node) {
  if (!IsAlive(reference)) {
    return Status::InvalidArgument("reference node is not live");
  }
  NodeId parent = cols_.parent()[reference];
  if (parent == kInvalidNode) {
    return Status::FailedPrecondition("reference node has no parent");
  }
  RETURN_IF_ERROR(CheckAttachable(node));
  NodeId* parents = cols_.parent();
  NodeId* lasts = cols_.last_child();
  NodeId* nexts = cols_.next_sibling();
  NodeId* prevs = cols_.prev_sibling();
  const NodeId after = nexts[reference];
  parents[node] = parent;
  prevs[node] = reference;
  nexts[node] = after;
  if (after != kInvalidNode) {
    prevs[after] = node;
  } else {
    lasts[parent] = node;
  }
  nexts[reference] = node;
  return Status::OK();
}

Status Document::InsertFirstChild(NodeId parent, NodeId node) {
  if (!IsValidId(parent) || !IsElement(parent)) {
    return Status::InvalidArgument("parent must be a live element");
  }
  if (cols_.first_child()[parent] != kInvalidNode) {
    return InsertBefore(cols_.first_child()[parent], node);
  }
  return AppendChild(parent, node);
}

Status Document::RemoveLeaf(NodeId node) {
  if (!IsAlive(node)) return Status::InvalidArgument("node is not live");
  if (cols_.first_child()[node] != kInvalidNode) {
    return Status::FailedPrecondition("RemoveLeaf requires a leaf node");
  }
  NodeId* parents = cols_.parent();
  NodeId* firsts = cols_.first_child();
  NodeId* lasts = cols_.last_child();
  NodeId* nexts = cols_.next_sibling();
  NodeId* prevs = cols_.prev_sibling();
  const NodeId p = parents[node];
  const NodeId prev = prevs[node];
  const NodeId next = nexts[node];
  if (prev != kInvalidNode) {
    nexts[prev] = next;
  } else if (p != kInvalidNode) {
    firsts[p] = next;
  }
  if (next != kInvalidNode) {
    prevs[next] = prev;
  } else if (p != kInvalidNode) {
    lasts[p] = prev;
  }
  if (node == root_) root_ = kInvalidNode;
  parents[node] = prevs[node] = nexts[node] = kInvalidNode;
  cols_.flags()[node] &= ~internal::kFlagAlive;
  return Status::OK();
}

Status Document::Rename(NodeId node, std::string_view new_label) {
  if (!IsAlive(node)) return Status::InvalidArgument("node is not live");
  if (!IsElement(node)) {
    return Status::InvalidArgument("only elements can be renamed");
  }
  if (!IsValidXmlName(new_label)) {
    return Status::InvalidArgument("invalid XML name: '" +
                                   std::string(new_label) + "'");
  }
  ReplacePayload(node, new_label);
  cols_.symbol()[node] = ResolveSymbol(new_label);
  return Status::OK();
}

void Document::ReplacePayload(NodeId id, std::string_view bytes) {
  std::string_view current = payload_[id];
  if (bytes.size() <= current.size() && !current.empty()) {
    // Shrinking (or equal-size) edits reuse the node's existing arena
    // range; the bytes are exclusively this node's, so the overwrite is
    // invisible to every other payload.
    char* dst = const_cast<char*>(current.data());
    std::memcpy(dst, bytes.data(), bytes.size());
    payload_[id] = std::string_view(dst, bytes.size());
    return;
  }
  payload_[id] = strings_.Add(bytes);
}

automata::Symbol Document::ResolveSymbol(std::string_view label) {
  if (intern_alphabet_ != nullptr) return intern_alphabet_->Intern(label);
  if (bound_alphabet_ != nullptr) {
    auto sym = bound_alphabet_->Find(label);
    return sym ? *sym : automata::kUnboundSymbol;
  }
  return automata::kUnboundSymbol;
}

Status Document::Bind(std::shared_ptr<const automata::Alphabet> alphabet) {
  if (alphabet == nullptr) return Status::InvalidArgument("null alphabet");
  intern_alphabet_ = nullptr;
  bound_alphabet_ = std::move(alphabet);
  const uint8_t* flags = cols_.flags();
  automata::Symbol* symbols = cols_.symbol();
  for (size_t id = 0; id < cols_.size(); ++id) {
    if (flags[id] != internal::kFlagAlive) continue;  // element + alive
    auto sym = bound_alphabet_->Find(payload_[id]);
    symbols[id] = sym ? *sym : automata::kUnboundSymbol;
  }
  return Status::OK();
}

Status Document::BindInterning(std::shared_ptr<automata::Alphabet> alphabet) {
  if (alphabet == nullptr) return Status::InvalidArgument("null alphabet");
  intern_alphabet_ = std::move(alphabet);
  bound_alphabet_ = intern_alphabet_;
  const uint8_t* flags = cols_.flags();
  automata::Symbol* symbols = cols_.symbol();
  for (size_t id = 0; id < cols_.size(); ++id) {
    if (flags[id] != internal::kFlagAlive) continue;
    symbols[id] = intern_alphabet_->Intern(payload_[id]);
  }
  return Status::OK();
}

void Document::Unbind() {
  bound_alphabet_ = nullptr;
  intern_alphabet_ = nullptr;
  automata::Symbol* symbols = cols_.symbol();
  for (size_t id = 0; id < cols_.size(); ++id) {
    symbols[id] = automata::kUnboundSymbol;
  }
}

Status Document::SetText(NodeId node, std::string_view text) {
  if (!IsAlive(node)) return Status::InvalidArgument("node is not live");
  if (!IsText(node)) {
    return Status::InvalidArgument("SetText requires a text node");
  }
  ReplacePayload(node, text);
  return Status::OK();
}

size_t Document::CountChildren(NodeId id) const {
  size_t n = 0;
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) ++n;
  return n;
}

std::vector<NodeId> Document::Children(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) {
    out.push_back(c);
  }
  return out;
}

std::vector<Attribute>& Document::MutableAttributes(NodeId id) {
  uint32_t slot = attr_slot_[id];
  if (slot == kNoAttrSlot) {
    slot = static_cast<uint32_t>(attr_slots_.size());
    attr_slots_.emplace_back();
    attr_slot_[id] = slot;
  }
  return attr_slots_[slot];
}

Status Document::AddAttribute(NodeId id, std::string_view name,
                              std::string_view value) {
  if (!IsAlive(id) || !IsElement(id)) {
    return Status::InvalidArgument("attributes require a live element");
  }
  MutableAttributes(id).push_back(
      Attribute{std::string(name), std::string(value)});
  return Status::OK();
}

Status Document::SetAttribute(NodeId id, std::string_view name,
                              std::string_view value) {
  if (!IsAlive(id) || !IsElement(id)) {
    return Status::InvalidArgument("attributes require a live element");
  }
  if (!IsValidXmlName(name)) {
    return Status::InvalidArgument("invalid attribute name '" +
                                   std::string(name) + "'");
  }
  std::vector<Attribute>& attrs = MutableAttributes(id);
  for (Attribute& a : attrs) {
    if (a.name == name) {
      a.value.assign(value);
      return Status::OK();
    }
  }
  attrs.push_back(Attribute{std::string(name), std::string(value)});
  return Status::OK();
}

Status Document::RemoveAttribute(NodeId id, std::string_view name) {
  if (!IsAlive(id) || !IsElement(id)) {
    return Status::InvalidArgument("attributes require a live element");
  }
  uint32_t slot = attr_slot_[id];
  if (slot == kNoAttrSlot) return Status::OK();
  auto& attrs = attr_slots_[slot];
  for (auto it = attrs.begin(); it != attrs.end(); ++it) {
    if (it->name == name) {
      attrs.erase(it);
      return Status::OK();
    }
  }
  return Status::OK();
}

const std::string* Document::FindAttribute(NodeId id,
                                           std::string_view name) const {
  for (const Attribute& a : attributes(id)) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

std::string Document::SimpleContent(NodeId id) const {
  std::string out;
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) {
    if (IsText(c)) out += text(c);
  }
  return out;
}

size_t Document::SubtreeSize(NodeId id) const {
  size_t n = 1;
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) {
    n += SubtreeSize(c);
  }
  return n;
}

bool Document::HasOnlyWhitespaceText(NodeId id) const {
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) {
    if (IsText(c) && !IsAllXmlWhitespace(text(c))) return false;
  }
  return true;
}

Document::MemoryStats Document::MemoryUsage() const {
  MemoryStats stats;
  stats.topology_bytes = cols_.arena_bytes();
  stats.payload_ref_bytes = payload_.capacity() * sizeof(std::string_view) +
                            attr_slot_.capacity() * sizeof(uint32_t);
  stats.string_arena_bytes = strings_.allocated_bytes();
  stats.attribute_bytes = attr_slots_.capacity() * sizeof(attr_slots_[0]);
  for (const auto& slot : attr_slots_) {
    stats.attribute_bytes += slot.capacity() * sizeof(Attribute);
    for (const Attribute& a : slot) {
      stats.attribute_bytes += a.name.capacity() + a.value.capacity();
    }
  }
  return stats;
}

std::vector<NodeId> ElementChildren(const Document& doc, NodeId id) {
  std::vector<NodeId> out;
  ForEachElementChild(doc, id, [&](NodeId c) { out.push_back(c); });
  return out;
}

std::vector<std::string_view> ChildLabelString(const Document& doc,
                                               NodeId id) {
  std::vector<std::string_view> out;
  ForEachElementChild(doc, id,
                      [&](NodeId c) { out.push_back(doc.label(c)); });
  return out;
}

}  // namespace xmlreval::xml
