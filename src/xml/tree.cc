#include "xml/tree.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace xmlreval::xml {

NodeId Document::CreateElement(std::string_view label) {
  Node n;
  n.kind = NodeKind::kElement;
  n.label.assign(label);
  n.symbol = ResolveSymbol(label);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Document::CreateText(std::string_view text) {
  Node n;
  n.kind = NodeKind::kText;
  n.text.assign(text);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

Status Document::CheckAttachable(NodeId node) const {
  if (!IsValidId(node)) return Status::InvalidArgument("invalid node id");
  if (!nodes_[node].alive) {
    return Status::FailedPrecondition("node has been deleted");
  }
  if (nodes_[node].parent != kInvalidNode || node == root_) {
    return Status::FailedPrecondition("node is already attached");
  }
  return Status::OK();
}

Status Document::SetRoot(NodeId node) {
  RETURN_IF_ERROR(CheckAttachable(node));
  if (!IsElement(node)) {
    return Status::InvalidArgument("document root must be an element");
  }
  if (root_ != kInvalidNode) {
    return Status::FailedPrecondition("document already has a root");
  }
  root_ = node;
  return Status::OK();
}

Status Document::AppendChild(NodeId parent, NodeId child) {
  if (!IsValidId(parent) || !IsElement(parent)) {
    return Status::InvalidArgument("parent must be a live element");
  }
  RETURN_IF_ERROR(CheckAttachable(child));
  Node& p = nodes_[parent];
  Node& c = nodes_[child];
  c.parent = parent;
  c.prev_sibling = p.last_child;
  c.next_sibling = kInvalidNode;
  if (p.last_child != kInvalidNode) {
    nodes_[p.last_child].next_sibling = child;
  } else {
    p.first_child = child;
  }
  p.last_child = child;
  return Status::OK();
}

Status Document::InsertBefore(NodeId reference, NodeId node) {
  if (!IsAlive(reference)) {
    return Status::InvalidArgument("reference node is not live");
  }
  NodeId parent = nodes_[reference].parent;
  if (parent == kInvalidNode) {
    return Status::FailedPrecondition("reference node has no parent");
  }
  RETURN_IF_ERROR(CheckAttachable(node));
  Node& r = nodes_[reference];
  Node& n = nodes_[node];
  n.parent = parent;
  n.next_sibling = reference;
  n.prev_sibling = r.prev_sibling;
  if (r.prev_sibling != kInvalidNode) {
    nodes_[r.prev_sibling].next_sibling = node;
  } else {
    nodes_[parent].first_child = node;
  }
  r.prev_sibling = node;
  return Status::OK();
}

Status Document::InsertAfter(NodeId reference, NodeId node) {
  if (!IsAlive(reference)) {
    return Status::InvalidArgument("reference node is not live");
  }
  NodeId parent = nodes_[reference].parent;
  if (parent == kInvalidNode) {
    return Status::FailedPrecondition("reference node has no parent");
  }
  RETURN_IF_ERROR(CheckAttachable(node));
  Node& r = nodes_[reference];
  Node& n = nodes_[node];
  n.parent = parent;
  n.prev_sibling = reference;
  n.next_sibling = r.next_sibling;
  if (r.next_sibling != kInvalidNode) {
    nodes_[r.next_sibling].prev_sibling = node;
  } else {
    nodes_[parent].last_child = node;
  }
  r.next_sibling = node;
  return Status::OK();
}

Status Document::InsertFirstChild(NodeId parent, NodeId node) {
  if (!IsValidId(parent) || !IsElement(parent)) {
    return Status::InvalidArgument("parent must be a live element");
  }
  if (nodes_[parent].first_child != kInvalidNode) {
    return InsertBefore(nodes_[parent].first_child, node);
  }
  return AppendChild(parent, node);
}

Status Document::RemoveLeaf(NodeId node) {
  if (!IsAlive(node)) return Status::InvalidArgument("node is not live");
  if (nodes_[node].first_child != kInvalidNode) {
    return Status::FailedPrecondition("RemoveLeaf requires a leaf node");
  }
  Node& n = nodes_[node];
  if (n.prev_sibling != kInvalidNode) {
    nodes_[n.prev_sibling].next_sibling = n.next_sibling;
  } else if (n.parent != kInvalidNode) {
    nodes_[n.parent].first_child = n.next_sibling;
  }
  if (n.next_sibling != kInvalidNode) {
    nodes_[n.next_sibling].prev_sibling = n.prev_sibling;
  } else if (n.parent != kInvalidNode) {
    nodes_[n.parent].last_child = n.prev_sibling;
  }
  if (node == root_) root_ = kInvalidNode;
  n.parent = n.prev_sibling = n.next_sibling = kInvalidNode;
  n.alive = false;
  return Status::OK();
}

Status Document::Rename(NodeId node, std::string_view new_label) {
  if (!IsAlive(node)) return Status::InvalidArgument("node is not live");
  if (!IsElement(node)) {
    return Status::InvalidArgument("only elements can be renamed");
  }
  if (!IsValidXmlName(new_label)) {
    return Status::InvalidArgument("invalid XML name: '" +
                                   std::string(new_label) + "'");
  }
  nodes_[node].label.assign(new_label);
  nodes_[node].symbol = ResolveSymbol(new_label);
  return Status::OK();
}

automata::Symbol Document::ResolveSymbol(std::string_view label) {
  if (intern_alphabet_ != nullptr) return intern_alphabet_->Intern(label);
  if (bound_alphabet_ != nullptr) {
    auto sym = bound_alphabet_->Find(label);
    return sym ? *sym : automata::kUnboundSymbol;
  }
  return automata::kUnboundSymbol;
}

Status Document::Bind(std::shared_ptr<const automata::Alphabet> alphabet) {
  if (alphabet == nullptr) return Status::InvalidArgument("null alphabet");
  intern_alphabet_ = nullptr;
  bound_alphabet_ = std::move(alphabet);
  for (Node& n : nodes_) {
    if (n.kind != NodeKind::kElement || !n.alive) continue;
    auto sym = bound_alphabet_->Find(n.label);
    n.symbol = sym ? *sym : automata::kUnboundSymbol;
  }
  return Status::OK();
}

Status Document::BindInterning(std::shared_ptr<automata::Alphabet> alphabet) {
  if (alphabet == nullptr) return Status::InvalidArgument("null alphabet");
  intern_alphabet_ = std::move(alphabet);
  bound_alphabet_ = intern_alphabet_;
  for (Node& n : nodes_) {
    if (n.kind != NodeKind::kElement || !n.alive) continue;
    n.symbol = intern_alphabet_->Intern(n.label);
  }
  return Status::OK();
}

void Document::Unbind() {
  bound_alphabet_ = nullptr;
  intern_alphabet_ = nullptr;
  for (Node& n : nodes_) n.symbol = automata::kUnboundSymbol;
}

Status Document::SetText(NodeId node, std::string_view text) {
  if (!IsAlive(node)) return Status::InvalidArgument("node is not live");
  if (!IsText(node)) {
    return Status::InvalidArgument("SetText requires a text node");
  }
  nodes_[node].text.assign(text);
  return Status::OK();
}

size_t Document::CountChildren(NodeId id) const {
  size_t n = 0;
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) ++n;
  return n;
}

std::vector<NodeId> Document::Children(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) {
    out.push_back(c);
  }
  return out;
}

Status Document::AddAttribute(NodeId id, std::string_view name,
                              std::string_view value) {
  if (!IsAlive(id) || !IsElement(id)) {
    return Status::InvalidArgument("attributes require a live element");
  }
  nodes_[id].attributes.push_back(
      Attribute{std::string(name), std::string(value)});
  return Status::OK();
}

Status Document::SetAttribute(NodeId id, std::string_view name,
                              std::string_view value) {
  if (!IsAlive(id) || !IsElement(id)) {
    return Status::InvalidArgument("attributes require a live element");
  }
  if (!IsValidXmlName(name)) {
    return Status::InvalidArgument("invalid attribute name '" +
                                   std::string(name) + "'");
  }
  for (Attribute& a : nodes_[id].attributes) {
    if (a.name == name) {
      a.value.assign(value);
      return Status::OK();
    }
  }
  nodes_[id].attributes.push_back(
      Attribute{std::string(name), std::string(value)});
  return Status::OK();
}

Status Document::RemoveAttribute(NodeId id, std::string_view name) {
  if (!IsAlive(id) || !IsElement(id)) {
    return Status::InvalidArgument("attributes require a live element");
  }
  auto& attrs = nodes_[id].attributes;
  for (auto it = attrs.begin(); it != attrs.end(); ++it) {
    if (it->name == name) {
      attrs.erase(it);
      return Status::OK();
    }
  }
  return Status::OK();
}

const std::string* Document::FindAttribute(NodeId id,
                                           std::string_view name) const {
  for (const Attribute& a : nodes_[id].attributes) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

std::string Document::SimpleContent(NodeId id) const {
  std::string out;
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) {
    if (IsText(c)) out += text(c);
  }
  return out;
}

size_t Document::SubtreeSize(NodeId id) const {
  size_t n = 1;
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) {
    n += SubtreeSize(c);
  }
  return n;
}

bool Document::HasOnlyWhitespaceText(NodeId id) const {
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) {
    if (IsText(c) && !TrimWhitespace(text(c)).empty()) return false;
  }
  return true;
}

std::vector<NodeId> ElementChildren(const Document& doc, NodeId id) {
  std::vector<NodeId> out;
  ForEachElementChild(doc, id, [&](NodeId c) { out.push_back(c); });
  return out;
}

std::vector<std::string_view> ChildLabelString(const Document& doc,
                                               NodeId id) {
  std::vector<std::string_view> out;
  ForEachElementChild(doc, id,
                      [&](NodeId c) { out.push_back(doc.label(c)); });
  return out;
}

}  // namespace xmlreval::xml
