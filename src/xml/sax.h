// Event-based (SAX-style) XML parsing.
//
// ParseXmlEvents drives a SaxHandler through the document without
// materializing a tree; xml::ParseXml is a thin DOM-building handler on
// top of it. The streaming validators (core/streaming_validator.h) consume
// these events directly, which is what realizes the paper's memory claim —
// "the memory requirement of our algorithm does not vary with the size of
// the document, but depends solely on the sizes of the schemas" (§7) —
// plus O(document depth) for the element stack.
//
// Handlers may abort the parse by returning a non-OK Status from any
// callback; the status is propagated to the ParseXmlEvents caller
// unchanged (used by validators to stop at the first early reject).

#ifndef XMLREVAL_XML_SAX_H_
#define XMLREVAL_XML_SAX_H_

#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "xml/parser.h"

namespace xmlreval::xml {

/// Attribute view valid only during the StartElement callback.
struct SaxAttribute {
  std::string_view name;
  std::string_view value;
};

/// Receiver of parse events. Default implementations accept and ignore.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  /// <!DOCTYPE name [subset]> — at most once, before the root element.
  virtual Status Doctype(std::string_view name, std::string_view subset) {
    (void)name;
    (void)subset;
    return Status::OK();
  }

  virtual Status StartElement(std::string_view name,
                              const std::vector<SaxAttribute>& attributes) {
    (void)name;
    (void)attributes;
    return Status::OK();
  }

  virtual Status EndElement(std::string_view name) {
    (void)name;
    return Status::OK();
  }

  /// Character data (entity references already decoded). Consecutive runs
  /// are coalesced per ParseOptions; whitespace-only runs are dropped when
  /// skip_whitespace_text is set.
  virtual Status Characters(std::string_view text) {
    (void)text;
    return Status::OK();
  }
};

/// Streams `input` through `handler`. Well-formedness errors and handler
/// failures both surface as the returned Status.
Status ParseXmlEvents(std::string_view input, SaxHandler* handler,
                      const ParseOptions& options = {});

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_SAX_H_
