#include "xml/editor.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace xmlreval::xml {

std::optional<std::string> ModificationIndex::OldLabel(const Document& doc,
                                                       NodeId node) const {
  auto it = deltas_.find(node);
  if (it == deltas_.end()) return std::string(doc.label(node));
  const Delta& d = it->second;
  switch (d.kind) {
    case DeltaKind::kInserted:
      return std::nullopt;  // ε: did not exist in T
    case DeltaKind::kRenamed:
      return d.old_label;
    case DeltaKind::kDeleted:
      if (d.never_existed) return std::nullopt;
      return d.old_label.empty() ? std::string(doc.label(node)) : d.old_label;
    default:
      return std::string(doc.label(node));
  }
}

std::optional<std::string> ModificationIndex::NewLabel(const Document& doc,
                                                       NodeId node) const {
  auto it = deltas_.find(node);
  if (it != deltas_.end() && it->second.kind == DeltaKind::kDeleted) {
    return std::nullopt;  // ε: absent from T'
  }
  return std::string(doc.label(node));
}

std::optional<automata::Symbol> ModificationIndex::OldSymbol(
    const Document& doc, NodeId node) const {
  auto it = deltas_.find(node);
  if (it == deltas_.end()) return doc.symbol(node);
  const Delta& d = it->second;
  switch (d.kind) {
    case DeltaKind::kInserted:
      return std::nullopt;  // ε: did not exist in T
    case DeltaKind::kRenamed:
    case DeltaKind::kDeleted: {
      if (d.kind == DeltaKind::kDeleted && d.never_existed) return std::nullopt;
      // Deleted nodes keep their label, so the node's own symbol is the
      // T-symbol unless a rename preceded the delete (old_label captured).
      if (d.old_label.empty()) return doc.symbol(node);
      if (d.old_symbol != automata::kUnboundSymbol) return d.old_symbol;
      // Bound after the edit: re-resolve the captured old label.
      if (const automata::Alphabet* a = doc.bound_alphabet()) {
        auto sym = a->Find(d.old_label);
        return sym ? *sym : automata::kUnboundSymbol;
      }
      return automata::kUnboundSymbol;
    }
    default:
      return doc.symbol(node);
  }
}

Status DocumentEditor::MarkTouched(NodeId node, DeltaKind kind,
                                   std::string old_label,
                                   automata::Symbol old_symbol) {
  if (sealed_) return Status::FailedPrecondition("editor already sealed");
  auto [it, fresh] = index_.deltas_.try_emplace(
      node,
      ModificationIndex::Delta{kind, std::move(old_label), old_symbol});
  if (!fresh) {
    // Collapse successive deltas on the same node so the annotation always
    // relates the ORIGINAL tree T to the FINAL encoded tree T'.
    ModificationIndex::Delta& d = it->second;
    if (kind == DeltaKind::kDeleted) {
      // Inserted-then-deleted never existed in either tree; renamed-then-
      // deleted keeps the rename's original label as its T-label.
      d.never_existed = (d.kind == DeltaKind::kInserted);
      d.kind = DeltaKind::kDeleted;
    } else if (kind == DeltaKind::kRenamed) {
      if (d.kind == DeltaKind::kUnchanged || d.kind == DeltaKind::kTextEdited) {
        d = ModificationIndex::Delta{kind, std::move(old_label), old_symbol};
      }
      // kInserted stays inserted; a second kRenamed keeps the first
      // rename's original label.
    }
    // kTextEdited over anything: no annotation change needed.
  }
  touched_.insert(node);
  ++index_.update_count_;
  return Status::OK();
}

bool DocumentEditor::EffectiveLeaf(NodeId node) const {
  for (NodeId c = doc_->first_child(node); c != kInvalidNode;
       c = doc_->next_sibling(c)) {
    if (!index_.IsDeleted(c)) return false;
  }
  return true;
}

Status DocumentEditor::RenameElement(NodeId node, std::string_view new_label) {
  if (sealed_) return Status::FailedPrecondition("editor already sealed");
  if (!doc_->IsAlive(node) || !doc_->IsElement(node)) {
    return Status::InvalidArgument("rename requires a live element");
  }
  if (index_.IsDeleted(node)) {
    return Status::FailedPrecondition("cannot rename a deleted node");
  }
  std::string old_label(doc_->label(node));
  automata::Symbol old_symbol = doc_->symbol(node);
  RETURN_IF_ERROR(doc_->Rename(node, new_label));
  return MarkTouched(node, DeltaKind::kRenamed, std::move(old_label),
                     old_symbol);
}

Result<NodeId> DocumentEditor::InsertElementBefore(NodeId reference,
                                                   std::string_view label) {
  if (sealed_) return Status::FailedPrecondition("editor already sealed");
  NodeId node = doc_->CreateElement(label);
  RETURN_IF_ERROR(doc_->InsertBefore(reference, node));
  RETURN_IF_ERROR(MarkTouched(node, DeltaKind::kInserted));
  return node;
}

Result<NodeId> DocumentEditor::InsertElementAfter(NodeId reference,
                                                  std::string_view label) {
  if (sealed_) return Status::FailedPrecondition("editor already sealed");
  NodeId node = doc_->CreateElement(label);
  RETURN_IF_ERROR(doc_->InsertAfter(reference, node));
  RETURN_IF_ERROR(MarkTouched(node, DeltaKind::kInserted));
  return node;
}

Result<NodeId> DocumentEditor::InsertElementFirstChild(NodeId parent,
                                                       std::string_view label) {
  if (sealed_) return Status::FailedPrecondition("editor already sealed");
  NodeId node = doc_->CreateElement(label);
  RETURN_IF_ERROR(doc_->InsertFirstChild(parent, node));
  RETURN_IF_ERROR(MarkTouched(node, DeltaKind::kInserted));
  return node;
}

Result<NodeId> DocumentEditor::InsertTextFirstChild(NodeId parent,
                                                    std::string_view text) {
  if (sealed_) return Status::FailedPrecondition("editor already sealed");
  NodeId node = doc_->CreateText(text);
  RETURN_IF_ERROR(doc_->InsertFirstChild(parent, node));
  RETURN_IF_ERROR(MarkTouched(node, DeltaKind::kInserted));
  return node;
}

Result<NodeId> DocumentEditor::InsertTextBefore(NodeId reference,
                                                std::string_view text) {
  if (sealed_) return Status::FailedPrecondition("editor already sealed");
  NodeId node = doc_->CreateText(text);
  RETURN_IF_ERROR(doc_->InsertBefore(reference, node));
  RETURN_IF_ERROR(MarkTouched(node, DeltaKind::kInserted));
  return node;
}

Result<NodeId> DocumentEditor::InsertTextAfter(NodeId reference,
                                               std::string_view text) {
  if (sealed_) return Status::FailedPrecondition("editor already sealed");
  NodeId node = doc_->CreateText(text);
  RETURN_IF_ERROR(doc_->InsertAfter(reference, node));
  RETURN_IF_ERROR(MarkTouched(node, DeltaKind::kInserted));
  return node;
}

Status DocumentEditor::DeleteLeaf(NodeId node) {
  if (sealed_) return Status::FailedPrecondition("editor already sealed");
  if (!doc_->IsAlive(node)) {
    return Status::InvalidArgument("delete requires a live node");
  }
  if (index_.IsDeleted(node)) {
    return Status::FailedPrecondition("node is already deleted");
  }
  if (!EffectiveLeaf(node)) {
    return Status::FailedPrecondition(
        "DeleteLeaf requires a leaf (delete descendants first)");
  }
  if (node == doc_->root()) {
    return Status::FailedPrecondition("cannot delete the document root");
  }
  return MarkTouched(node, DeltaKind::kDeleted);
}

Status DocumentEditor::UpdateText(NodeId node, std::string_view text) {
  if (sealed_) return Status::FailedPrecondition("editor already sealed");
  if (!doc_->IsAlive(node) || !doc_->IsText(node)) {
    return Status::InvalidArgument("UpdateText requires a live text node");
  }
  if (index_.IsDeleted(node)) {
    return Status::FailedPrecondition("cannot update a deleted node");
  }
  RETURN_IF_ERROR(doc_->SetText(node, text));
  return MarkTouched(node, DeltaKind::kTextEdited);
}

ModificationIndex DocumentEditor::Seal() {
  sealed_ = true;
  // Dewey paths are computed against the FINAL encoded tree (deleted nodes
  // still linked), so earlier inserts cannot invalidate later paths.
  for (NodeId node : touched_) {
    index_.trie_.Insert(DeweyPath::Of(*doc_, node));
  }
  // Remember what must be physically removed; the index itself is handed
  // to the caller (ModificationIndex owns the trie and is move-only).
  deleted_nodes_.clear();
  for (const auto& [node, delta] : index_.deltas_) {
    if (delta.kind == DeltaKind::kDeleted) deleted_nodes_.push_back(node);
  }
  return std::move(index_);
}

Status DocumentEditor::Apply(const EditOp& op) {
  switch (op.kind) {
    case EditOp::Kind::kRename:
      return RenameElement(op.node, op.value);
    case EditOp::Kind::kInsertElementFirstChild:
      return InsertElementFirstChild(op.node, op.value).status();
    case EditOp::Kind::kInsertElementBefore:
      return InsertElementBefore(op.node, op.value).status();
    case EditOp::Kind::kInsertElementAfter:
      return InsertElementAfter(op.node, op.value).status();
    case EditOp::Kind::kInsertTextFirstChild:
      return InsertTextFirstChild(op.node, op.value).status();
    case EditOp::Kind::kInsertTextBefore:
      return InsertTextBefore(op.node, op.value).status();
    case EditOp::Kind::kInsertTextAfter:
      return InsertTextAfter(op.node, op.value).status();
    case EditOp::Kind::kDeleteLeaf:
      return DeleteLeaf(op.node);
    case EditOp::Kind::kUpdateText:
      return UpdateText(op.node, op.value);
  }
  return Status::InvalidArgument("unknown EditOp kind");
}

Status DocumentEditor::Commit() {
  if (!sealed_) {
    return Status::FailedPrecondition("Seal() the editor before Commit()");
  }
  // Deleted nodes are leaves in the effective tree but may have deleted
  // children; remove bottom-up by repeated leaf-removal passes.
  std::vector<NodeId> deleted = deleted_nodes_;
  bool progress = true;
  while (!deleted.empty() && progress) {
    progress = false;
    std::vector<NodeId> remaining;
    for (NodeId node : deleted) {
      if (doc_->HasChildren(node)) {
        remaining.push_back(node);
      } else {
        RETURN_IF_ERROR(doc_->RemoveLeaf(node));
        progress = true;
      }
    }
    deleted.swap(remaining);
  }
  if (!deleted.empty()) {
    return Status::Internal("deleted subtree contains non-deleted nodes");
  }
  return Status::OK();
}

}  // namespace xmlreval::xml
