// A from-scratch, non-validating XML 1.0 parser producing xml::Document.
//
// Supported: prolog/XML declaration, comments, processing instructions,
// CDATA sections, character references (decimal and hex), the five
// predefined entities, attributes, and full well-formedness checking
// (tag matching, attribute uniqueness, single root). A DOCTYPE declaration
// is tolerated and its internal subset skipped — DTDs are parsed separately
// by schema::ParseDtd, which reuses this file's low-level lexing helpers.
//
// Unsupported (out of the paper's scope, rejected with kUnsupported):
// user-defined general entities in content.

#ifndef XMLREVAL_XML_PARSER_H_
#define XMLREVAL_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "automata/alphabet.h"
#include "common/result.h"
#include "xml/tree.h"

namespace xmlreval::xml {

struct ParseOptions {
  /// Drop text nodes that are entirely XML whitespace. Data-oriented
  /// documents (everything in the paper's evaluation) use indentation
  /// whitespace that has no place in the content model, so this defaults on.
  bool skip_whitespace_text = true;
  /// Merge adjacent text runs (including CDATA) into single text nodes.
  bool coalesce_text = true;
  /// When set, the produced Document is bound to this alphabet and element
  /// labels are interned as they are parsed (Document::BindInterning), so
  /// validators run string-free from the first visit. The caller must be the
  /// alphabet's sole writer during the parse (see automata/alphabet.h).
  std::shared_ptr<automata::Alphabet> intern_alphabet;
};

/// Parses an XML document from `input`. Errors carry 1-based line:column.
Result<Document> ParseXml(std::string_view input,
                          const ParseOptions& options = {});

/// Parses and returns the document plus the extracted DOCTYPE internal
/// subset (empty when absent); used by the DTD front end for documents that
/// inline their DTD.
struct ParsedWithDoctype {
  Document document;
  std::string doctype_name;      // name in <!DOCTYPE name ...>
  std::string internal_subset;   // text between '[' and ']'
};
Result<ParsedWithDoctype> ParseXmlWithDoctype(std::string_view input,
                                              const ParseOptions& options = {});

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_PARSER_H_
