#include "xml/label_index.h"

namespace xmlreval::xml {

LabelIndex LabelIndex::Build(const Document& doc) {
  LabelIndex index;
  if (!doc.has_root()) return index;
  const automata::Alphabet* alphabet = doc.bound_alphabet();
  if (alphabet != nullptr) index.by_symbol_.resize(alphabet->size());
  // Iterative DFS in document order: push children last-to-first by walking
  // the sibling chain backwards, so no per-node child vector is built.
  std::vector<NodeId> stack{doc.root()};
  while (!stack.empty()) {
    NodeId node = stack.back();
    stack.pop_back();
    if (doc.IsElement(node)) {
      auto it = index.index_.find(doc.label(node));
      if (it == index.index_.end()) {
        it = index.index_.emplace(std::string(doc.label(node)),
                                  std::vector<NodeId>()).first;
      }
      it->second.push_back(node);
      automata::Symbol sym = doc.symbol(node);
      if (sym < index.by_symbol_.size()) {
        index.by_symbol_[sym].push_back(node);
      } else if (alphabet != nullptr && index.first_unbound_ == kInvalidNode) {
        index.first_unbound_ = node;
      }
      ++index.total_elements_;
      for (NodeId c = doc.last_child(node); c != kInvalidNode;
           c = doc.prev_sibling(c)) {
        stack.push_back(c);
      }
    }
  }
  return index;
}

std::vector<std::string> LabelIndex::Labels() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [label, nodes] : index_) out.push_back(label);
  return out;
}

}  // namespace xmlreval::xml
