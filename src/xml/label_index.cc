#include "xml/label_index.h"

namespace xmlreval::xml {

LabelIndex LabelIndex::Build(const Document& doc) {
  LabelIndex index;
  if (!doc.has_root()) return index;
  // Iterative DFS in document order.
  std::vector<NodeId> stack{doc.root()};
  while (!stack.empty()) {
    NodeId node = stack.back();
    stack.pop_back();
    if (doc.IsElement(node)) {
      index.index_[doc.label(node)].push_back(node);
      ++index.total_elements_;
      // Push children reversed so they pop in document order.
      std::vector<NodeId> children = doc.Children(node);
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
  return index;
}

std::vector<std::string> LabelIndex::Labels() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [label, nodes] : index_) out.push_back(label);
  return out;
}

}  // namespace xmlreval::xml
