#include "xml/skip_scanner.h"

#include <cstring>

#include "common/string_util.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace xmlreval::xml {

const char* FindByteSimd(const char* p, size_t n, char byte) {
#if defined(__SSE2__)
  const __m128i needle = _mm_set1_epi8(byte);
  while (n >= 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, needle));
    if (mask != 0) return p + __builtin_ctz(static_cast<unsigned>(mask));
    p += 16;
    n -= 16;
  }
#elif defined(__aarch64__)
  const uint8x16_t needle = vdupq_n_u8(static_cast<uint8_t>(byte));
  while (n >= 16) {
    uint8x16_t v = vld1q_u8(reinterpret_cast<const uint8_t*>(p));
    uint8x16_t eq = vceqq_u8(v, needle);
    if (vmaxvq_u8(eq) != 0) {
      // Narrow the 16 lanes to a 64-bit nibble mask and count zeros.
      uint64_t nib = vget_lane_u64(
          vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(eq), 4)), 0);
      return p + (__builtin_ctzll(nib) >> 2);
    }
    p += 16;
    n -= 16;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    if (p[i] == byte) return p + i;
  }
  return nullptr;
}

namespace {
constexpr std::string_view kCDataOpen = "<![CDATA[";
}  // namespace

void SkipScanner::Begin() {
  state_ = State::kContent;
  depth_ = 1;
  prefix_pos_ = 0;
  quote_ = 0;
  error_.clear();
}

SkipScanner::Result SkipScanner::Fail(std::string message) {
  error_ = std::move(message);
  return Result::kError;
}

SkipScanner::Result SkipScanner::Scan(std::string_view data,
                                      size_t* consumed) {
  const char* p = data.data();
  const char* const end = p + data.size();
  // Every return path sets *consumed from `p` first.
  auto eaten = [&] { return static_cast<size_t>(p - data.data()); };

  while (p < end) {
    switch (state_) {
      case State::kContent: {
        // The hot state: everything between markup is irrelevant — one
        // SIMD sweep to the next '<'.
        const char* lt = FindByteSimd(p, static_cast<size_t>(end - p), '<');
        if (lt == nullptr) {
          p = end;
          break;
        }
        p = lt + 1;
        state_ = State::kLt;
        break;
      }
      case State::kLt: {
        char c = *p++;
        if (c == '/') {
          state_ = State::kEndTagName;
        } else if (c == '!') {
          state_ = State::kBang;
        } else if (c == '?') {
          state_ = State::kPi;
        } else if (IsNameStartChar(c)) {
          state_ = State::kStartTag;
        } else {
          *consumed = eaten();
          return Fail("expected XML name");
        }
        break;
      }
      case State::kBang: {
        char c = *p++;
        if (c == '-') {
          state_ = State::kBangDash;
        } else if (c == '[') {
          state_ = State::kCDataPrefix;
          prefix_pos_ = 3;  // "<![" already matched
        } else {
          *consumed = eaten();
          return Fail("expected XML name");
        }
        break;
      }
      case State::kBangDash: {
        if (*p++ != '-') {
          *consumed = eaten();
          return Fail("expected XML name");
        }
        state_ = State::kComment;
        break;
      }
      case State::kCDataPrefix: {
        if (*p++ != kCDataOpen[prefix_pos_]) {
          *consumed = eaten();
          return Fail("expected XML name");
        }
        if (++prefix_pos_ == kCDataOpen.size()) state_ = State::kCData;
        break;
      }
      case State::kComment: {
        const char* dash = FindByteSimd(p, static_cast<size_t>(end - p), '-');
        if (dash == nullptr) {
          p = end;
          break;
        }
        p = dash + 1;
        state_ = State::kCommentDash;
        break;
      }
      case State::kCommentDash: {
        state_ = (*p++ == '-') ? State::kCommentDashDash : State::kComment;
        break;
      }
      case State::kCommentDashDash: {
        if (*p++ != '>') {
          *consumed = eaten();
          return Fail("'--' not allowed inside comment");
        }
        state_ = State::kContent;
        break;
      }
      case State::kCData: {
        const char* br = FindByteSimd(p, static_cast<size_t>(end - p), ']');
        if (br == nullptr) {
          p = end;
          break;
        }
        p = br + 1;
        state_ = State::kCDataBracket;
        break;
      }
      case State::kCDataBracket: {
        state_ = (*p++ == ']') ? State::kCDataBracketBracket : State::kCData;
        break;
      }
      case State::kCDataBracketBracket: {
        char c = *p++;
        if (c == '>') {
          state_ = State::kContent;
        } else if (c != ']') {  // "]]]" keeps the two-bracket window open
          state_ = State::kCData;
        }
        break;
      }
      case State::kPi: {
        const char* q = FindByteSimd(p, static_cast<size_t>(end - p), '?');
        if (q == nullptr) {
          p = end;
          break;
        }
        p = q + 1;
        state_ = State::kPiQ;
        break;
      }
      case State::kPiQ: {
        char c = *p++;
        if (c == '>') {
          state_ = State::kContent;
        } else if (c != '?') {
          state_ = State::kPi;
        }
        break;
      }
      case State::kStartTag: {
        char c = *p++;
        if (c == '>') {
          ++depth_;
          state_ = State::kContent;
        } else if (c == '"' || c == '\'') {
          quote_ = c;
          state_ = State::kStartTagQuote;
        } else if (c == '/') {
          state_ = State::kStartTagSlash;
        } else if (c == '<') {
          *consumed = eaten();
          return Fail("'<' not allowed inside a start tag");
        }
        break;
      }
      case State::kStartTagQuote: {
        const char* q =
            FindByteSimd(p, static_cast<size_t>(end - p), quote_);
        const size_t span =
            q == nullptr ? static_cast<size_t>(end - p)
                         : static_cast<size_t>(q - p);
        if (FindByteSimd(p, span, '<') != nullptr) {
          p += span;
          *consumed = eaten();
          return Fail("'<' not allowed in attribute value");
        }
        if (q == nullptr) {
          p = end;
          break;
        }
        p = q + 1;
        state_ = State::kStartTag;
        break;
      }
      case State::kStartTagSlash: {
        if (*p++ != '>') {
          *consumed = eaten();
          return Fail("expected '>' after '/'");
        }
        // Self-closing: opens and closes at once — depth unchanged.
        state_ = State::kContent;
        break;
      }
      case State::kEndTagName: {
        if (!IsNameStartChar(*p)) {
          *consumed = eaten();
          return Fail("expected XML name");
        }
        ++p;
        state_ = State::kEndTag;
        break;
      }
      case State::kEndTag: {
        const char* gt = FindByteSimd(p, static_cast<size_t>(end - p), '>');
        if (gt == nullptr) {
          p = end;
          break;
        }
        p = gt + 1;
        if (--depth_ == 0) {
          *consumed = eaten();
          return Result::kDone;
        }
        state_ = State::kContent;
        break;
      }
    }
  }
  *consumed = eaten();
  return Result::kNeedMore;
}

}  // namespace xmlreval::xml
