#include "xml/path_trie.h"

namespace xmlreval::xml {

void PathTrie::Insert(const DeweyPath& path) {
  TrieNode* node = root_.get();
  for (uint32_t component : path.components()) {
    std::unique_ptr<TrieNode>& child = node->children[component];
    if (!child) child = std::make_unique<TrieNode>();
    node = child.get();
  }
  if (!node->terminal) {
    node->terminal = true;
    ++size_;
  }
}

bool PathTrie::ContainsPrefixedBy(const DeweyPath& path) const {
  const TrieNode* node = root_.get();
  for (uint32_t component : path.components()) {
    auto it = node->children.find(component);
    if (it == node->children.end()) return false;
    node = it->second.get();
  }
  return true;  // node exists => some inserted path passes through here
}

bool PathTrie::ContainsExactly(const DeweyPath& path) const {
  const TrieNode* node = root_.get();
  for (uint32_t component : path.components()) {
    auto it = node->children.find(component);
    if (it == node->children.end()) return false;
    node = it->second.get();
  }
  return node->terminal;
}

void PathTrie::Clear() {
  root_ = std::make_unique<TrieNode>();
  size_ = 0;
}

}  // namespace xmlreval::xml
