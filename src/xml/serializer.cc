#include "xml/serializer.h"

#include "common/string_util.h"

namespace xmlreval::xml {
namespace {

bool HasElementChild(const Document& doc, NodeId id) {
  for (NodeId c = doc.first_child(id); c != kInvalidNode;
       c = doc.next_sibling(c)) {
    if (doc.IsElement(c)) return true;
  }
  return false;
}

void SerializeNode(const Document& doc, NodeId id, int depth,
                   const SerializeOptions& options, std::string* out) {
  auto indent = [&](int d) {
    if (!options.pretty) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(d) * options.indent_width, ' ');
  };

  if (doc.IsText(id)) {
    out->append(EscapeXmlText(doc.text(id)));
    return;
  }

  if (depth > 0 || options.pretty) {
    if (depth > 0) indent(depth);
  }
  out->push_back('<');
  out->append(doc.label(id));
  for (const Attribute& a : doc.attributes(id)) {
    out->push_back(' ');
    out->append(a.name);
    out->append("=\"");
    out->append(EscapeXmlText(a.value));
    out->push_back('"');
  }
  if (!doc.HasChildren(id)) {
    out->append("/>");
    return;
  }
  out->push_back('>');

  // Elements with element children get pretty indentation; elements with
  // only text content stay on one line so round-tripping does not inject
  // whitespace into simple values.
  bool structured = HasElementChild(doc, id);
  for (NodeId c = doc.first_child(id); c != kInvalidNode;
       c = doc.next_sibling(c)) {
    if (doc.IsText(c)) {
      out->append(EscapeXmlText(doc.text(c)));
    } else {
      SerializeNode(doc, c, structured ? depth + 1 : 0, options, out);
    }
  }
  if (structured) indent(depth);
  out->append("</");
  out->append(doc.label(id));
  out->push_back('>');
}

}  // namespace

std::string Serialize(const Document& doc, const SerializeOptions& options) {
  std::string out;
  if (options.xml_declaration) {
    out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  }
  if (doc.has_root()) {
    if (!out.empty() && !options.pretty) out.push_back('\n');
    SerializeNode(doc, doc.root(), 0, options, &out);
  }
  if (options.pretty) out.push_back('\n');
  return out;
}

std::string SerializeSubtree(const Document& doc, NodeId node,
                             const SerializeOptions& options) {
  std::string out;
  SerializeNode(doc, node, 0, options, &out);
  return out;
}

}  // namespace xmlreval::xml
