// Serialization of xml::Document back to XML text.

#ifndef XMLREVAL_XML_SERIALIZER_H_
#define XMLREVAL_XML_SERIALIZER_H_

#include <string>

#include "xml/tree.h"

namespace xmlreval::xml {

struct SerializeOptions {
  /// Pretty-print with newlines and `indent_width` spaces per depth level.
  bool pretty = true;
  int indent_width = 2;
  /// Emit the `<?xml version="1.0"?>` declaration.
  bool xml_declaration = true;
};

/// Serializes the whole document.
std::string Serialize(const Document& doc, const SerializeOptions& options = {});

/// Serializes the subtree rooted at `node`.
std::string SerializeSubtree(const Document& doc, NodeId node,
                             const SerializeOptions& options = {});

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_SERIALIZER_H_
