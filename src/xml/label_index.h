// Label index: direct access to all element instances of each tag.
//
// §3.4 of the paper observes that for DTDs — where a label determines its
// type — a validator that can enumerate the instances of a label directly
// (the "additional indexing information" of a DOM's getElementsByTagName)
// need only visit the labels whose source/target types are neither
// subsumed nor disjoint. This index is that access path.

#ifndef XMLREVAL_XML_LABEL_INDEX_H_
#define XMLREVAL_XML_LABEL_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/tree.h"

namespace xmlreval::xml {

class LabelIndex {
 public:
  /// One pass over the document, O(nodes).
  static LabelIndex Build(const Document& doc);

  /// Instances of `label` in document order; empty when absent.
  const std::vector<NodeId>& Instances(std::string_view label) const {
    static const std::vector<NodeId> kEmpty;
    auto it = index_.find(std::string(label));
    return it == index_.end() ? kEmpty : it->second;
  }

  /// All labels occurring in the document.
  std::vector<std::string> Labels() const;

  size_t TotalElements() const { return total_elements_; }

 private:
  std::unordered_map<std::string, std::vector<NodeId>> index_;
  size_t total_elements_ = 0;
};

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_LABEL_INDEX_H_
