// Label index: direct access to all element instances of each tag.
//
// §3.4 of the paper observes that for DTDs — where a label determines its
// type — a validator that can enumerate the instances of a label directly
// (the "additional indexing information" of a DOM's getElementsByTagName)
// need only visit the labels whose source/target types are neither
// subsumed nor disjoint. This index is that access path.
//
// When the document is bound to an alphabet (see xml/tree.h), the index
// additionally keeps dense per-symbol buckets so validators can enumerate
// instances by Symbol with no hashing at all.

#ifndef XMLREVAL_XML_LABEL_INDEX_H_
#define XMLREVAL_XML_LABEL_INDEX_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "automata/alphabet.h"
#include "xml/tree.h"

namespace xmlreval::xml {

class LabelIndex {
 public:
  /// One pass over the document, O(nodes), no per-node allocations beyond
  /// bucket growth.
  static LabelIndex Build(const Document& doc);

  /// Instances of `label` in document order; empty when absent.
  const std::vector<NodeId>& Instances(std::string_view label) const {
    auto it = index_.find(label);
    return it == index_.end() ? kEmpty() : it->second;
  }

  /// Instances of the bound symbol `sym` in document order; empty when the
  /// document was unbound at Build time or `sym` is out of range.
  const std::vector<NodeId>& Instances(automata::Symbol sym) const {
    if (sym >= by_symbol_.size()) return kEmpty();
    return by_symbol_[sym];
  }

  /// True if Build saw a bound document, i.e. Instances(Symbol) works.
  bool HasSymbolBuckets() const { return !by_symbol_.empty(); }

  /// Number of symbol buckets (== bound alphabet size at Build time).
  size_t NumSymbolBuckets() const { return by_symbol_.size(); }

  /// First element (document order) whose label did not resolve to a bound
  /// symbol, or kInvalidNode. With symbol buckets, this is the only way an
  /// element can be missing from them, so a validator iterating buckets
  /// checks this once instead of re-resolving every label.
  NodeId FirstUnbound() const { return first_unbound_; }

  /// All labels occurring in the document.
  std::vector<std::string> Labels() const;

  size_t TotalElements() const { return total_elements_; }

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  static const std::vector<NodeId>& kEmpty() {
    static const std::vector<NodeId> empty;
    return empty;
  }

  std::unordered_map<std::string, std::vector<NodeId>, StringHash,
                     std::equal_to<>>
      index_;
  // Dense symbol → instances buckets; empty when the document was unbound.
  // Out-of-Σ elements (symbol == kUnboundSymbol) appear only in index_.
  std::vector<std::vector<NodeId>> by_symbol_;
  NodeId first_unbound_ = kInvalidNode;
  size_t total_elements_ = 0;
};

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_LABEL_INDEX_H_
