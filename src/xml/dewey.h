// Dewey decimal numbering of tree nodes (Section 3.3 of the paper).
//
// A DeweyPath identifies a node by the sequence of child indices on the
// path from the root: the root is [], its third child is [2], that child's
// first child is [2,0], and so on. The paper's `modified()` predicate is
// implemented by storing the Dewey paths of updated nodes in a PathTrie
// (path_trie.h) and asking whether any stored path extends the query path.

#ifndef XMLREVAL_XML_DEWEY_H_
#define XMLREVAL_XML_DEWEY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/tree.h"

namespace xmlreval::xml {

/// Sequence of 0-based child ordinals from the root.
class DeweyPath {
 public:
  DeweyPath() = default;
  explicit DeweyPath(std::vector<uint32_t> components)
      : components_(std::move(components)) {}

  /// Path of `node` within `doc`, computed by walking parent links
  /// (O(depth * avg-fanout); fine for update logging, not used on hot
  /// validation paths where the path is maintained incrementally).
  static DeweyPath Of(const Document& doc, NodeId node);

  /// Path of `node` RELATIVE to `ancestor` (Relative(doc, n, n) is ε).
  /// `ancestor` must lie on `node`'s parent chain; used by subtree
  /// validators whose reports are rebased by the caller. Same cost model
  /// as Of — only computed on failure paths.
  static DeweyPath Relative(const Document& doc, NodeId node,
                            NodeId ancestor);

  const std::vector<uint32_t>& components() const { return components_; }
  size_t depth() const { return components_.size(); }
  bool IsRoot() const { return components_.empty(); }

  /// Extends with one more child step.
  DeweyPath Child(uint32_t ordinal) const;

  /// True iff `this` is a prefix of `other` (every node is a prefix of
  /// itself).
  bool IsPrefixOf(const DeweyPath& other) const;

  /// "1.2.0"-style rendering; "ε" for the root.
  std::string ToString() const;

  bool operator==(const DeweyPath& other) const {
    return components_ == other.components_;
  }
  /// Lexicographic; matches document order for paths in the same tree.
  bool operator<(const DeweyPath& other) const {
    return components_ < other.components_;
  }

 private:
  std::vector<uint32_t> components_;
};

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_DEWEY_H_
