// Ordered labeled trees (the paper's document abstraction, Section 3).
//
// A Document owns its nodes in a contiguous arena; a NodeId is an index into
// that arena. Nodes are linked first-child / last-child / next-sibling /
// prev-sibling / parent, so all the traversals the validators need are O(1)
// per step and structural edits are O(1) pointer splices. NodeIds remain
// stable across edits (deleted nodes are tombstoned, never reused), which is
// what lets the update log of Section 3.3 refer to nodes safely.
//
// Element nodes carry a label (tag) and attributes; text nodes carry
// character data and correspond to the paper's chi-labeled leaves.

#ifndef XMLREVAL_XML_TREE_H_
#define XMLREVAL_XML_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace xmlreval::xml {

/// Index of a node within its Document. kInvalidNode plays the role of null.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

enum class NodeKind : uint8_t {
  kElement,
  kText,
};

/// One attribute on an element node.
struct Attribute {
  std::string name;
  std::string value;
};

/// A mutable XML document: an ordered labeled tree plus attributes.
class Document {
 public:
  Document() = default;

  // Documents are heavyweight; move-only keeps accidental copies out of the
  // validators' hot paths.
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) noexcept = default;
  Document& operator=(Document&&) noexcept = default;

  /// Creates a detached element node with the given tag.
  NodeId CreateElement(std::string_view label);

  /// Creates a detached text node with the given character data.
  NodeId CreateText(std::string_view text);

  /// Sets the document root. The node must be a detached element.
  Status SetRoot(NodeId node);

  /// Appends `child` (detached) as the last child of `parent`.
  Status AppendChild(NodeId parent, NodeId child);

  /// Inserts `node` (detached) immediately before `reference`, which must
  /// have a parent.
  Status InsertBefore(NodeId reference, NodeId node);

  /// Inserts `node` (detached) immediately after `reference`, which must
  /// have a parent.
  Status InsertAfter(NodeId reference, NodeId node);

  /// Inserts `node` (detached) as the first child of `parent`.
  Status InsertFirstChild(NodeId parent, NodeId node);

  /// Detaches `node` from its parent and tombstones it. The node must be a
  /// leaf (the paper's update model deletes leaves only; subtree deletion is
  /// expressed as a bottom-up sequence of leaf deletions).
  Status RemoveLeaf(NodeId node);

  /// Replaces the label of an element node.
  Status Rename(NodeId node, std::string_view new_label);

  /// Replaces the character data of a text node.
  Status SetText(NodeId node, std::string_view text);

  // -- Accessors -----------------------------------------------------------

  NodeId root() const { return root_; }
  bool has_root() const { return root_ != kInvalidNode; }

  bool IsValidId(NodeId id) const { return id < nodes_.size(); }
  bool IsAlive(NodeId id) const { return IsValidId(id) && nodes_[id].alive; }

  NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  bool IsElement(NodeId id) const {
    return nodes_[id].kind == NodeKind::kElement;
  }
  bool IsText(NodeId id) const { return nodes_[id].kind == NodeKind::kText; }

  /// Tag of an element node, or empty for text nodes.
  const std::string& label(NodeId id) const { return nodes_[id].label; }

  /// Character data of a text node, or empty for elements.
  const std::string& text(NodeId id) const { return nodes_[id].text; }

  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  NodeId first_child(NodeId id) const { return nodes_[id].first_child; }
  NodeId last_child(NodeId id) const { return nodes_[id].last_child; }
  NodeId next_sibling(NodeId id) const { return nodes_[id].next_sibling; }
  NodeId prev_sibling(NodeId id) const { return nodes_[id].prev_sibling; }

  bool HasChildren(NodeId id) const {
    return nodes_[id].first_child != kInvalidNode;
  }

  /// Number of children of `id` (O(children)).
  size_t CountChildren(NodeId id) const;

  /// Children of `id` in document order (O(children), allocates).
  std::vector<NodeId> Children(NodeId id) const;

  /// Attributes of an element node.
  const std::vector<Attribute>& attributes(NodeId id) const {
    return nodes_[id].attributes;
  }

  /// Adds an attribute to an element node (no duplicate-name check; the
  /// parser enforces uniqueness at parse time).
  Status AddAttribute(NodeId id, std::string_view name, std::string_view value);

  /// Value of the named attribute, or nullptr when absent.
  const std::string* FindAttribute(NodeId id, std::string_view name) const;

  /// Sets (adding or overwriting) an attribute on an element node.
  Status SetAttribute(NodeId id, std::string_view name,
                      std::string_view value);

  /// Removes the named attribute; OK even when absent.
  Status RemoveAttribute(NodeId id, std::string_view name);

  /// Concatenation of the direct text children of `id`; the "simple value"
  /// an element with simple type carries.
  std::string SimpleContent(NodeId id) const;

  /// Total nodes ever created (tombstones included).
  size_t NodeCount() const { return nodes_.size(); }

  /// Number of live nodes in the subtree rooted at `id` (O(subtree)).
  size_t SubtreeSize(NodeId id) const;

  /// True if all text children of `id` are whitespace-only. Used by the
  /// validators to decide whether mixed text is ignorable.
  bool HasOnlyWhitespaceText(NodeId id) const;

 private:
  struct Node {
    NodeKind kind = NodeKind::kElement;
    bool alive = true;
    std::string label;  // element tag; empty for text nodes
    std::string text;   // character data; empty for elements
    NodeId parent = kInvalidNode;
    NodeId first_child = kInvalidNode;
    NodeId last_child = kInvalidNode;
    NodeId next_sibling = kInvalidNode;
    NodeId prev_sibling = kInvalidNode;
    std::vector<Attribute> attributes;
  };

  Status CheckAttachable(NodeId node) const;

  std::vector<Node> nodes_;
  NodeId root_ = kInvalidNode;
};

/// Iterates the element children of `id` (skipping text nodes), calling
/// `fn(child)` in document order. Fn: void(NodeId).
template <typename Fn>
void ForEachElementChild(const Document& doc, NodeId id, Fn&& fn) {
  for (NodeId c = doc.first_child(id); c != kInvalidNode;
       c = doc.next_sibling(c)) {
    if (doc.IsElement(c)) fn(c);
  }
}

/// Collects the element children of `id` in document order.
std::vector<NodeId> ElementChildren(const Document& doc, NodeId id);

/// The string of child element labels of `id` — the paper's
/// `constructstring(children(e))` — in document order.
std::vector<std::string_view> ChildLabelString(const Document& doc, NodeId id);

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_TREE_H_
