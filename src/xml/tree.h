// Ordered labeled trees (the paper's document abstraction, Section 3).
//
// A Document owns its nodes in structure-of-arrays storage; a NodeId is a
// row index. The HOT topology data the validators' cast walk touches —
// flags (alive/kind), interned symbol, and the five structural links
// (parent / first-child / last-child / next-sibling / prev-sibling) — live
// as parallel dense columns inside ONE contiguous arena, so a preorder
// walk streams over contiguous int32 arrays instead of striding through
// ~120-byte heterogeneous records. COLD per-node data is split out of the
// traversal path entirely: label/text payloads are byte ranges in a
// chunked string arena (stable — chunks never move or shrink), and
// attributes live in a side table reached through a per-node slot index.
//
// Nodes are linked first-child / last-child / next-sibling / prev-sibling
// / parent, so all the traversals the validators need are O(1) per step
// and structural edits are O(1) pointer splices. NodeIds remain stable
// across edits (deleted nodes are tombstoned, never reused), which is what
// lets the update log of Section 3.3 refer to nodes safely. Payload bytes
// are likewise append-only: Rename/SetText write a new arena range (or
// overwrite in place when the new payload fits), so string_views handed
// out earlier never dangle.
//
// Element nodes carry a label (tag) and attributes; text nodes carry
// character data and correspond to the paper's chi-labeled leaves.

#ifndef XMLREVAL_XML_TREE_H_
#define XMLREVAL_XML_TREE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "automata/alphabet.h"
#include "common/result.h"
#include "common/status.h"

namespace xmlreval::xml {

/// Index of a node within its Document. kInvalidNode plays the role of null.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

enum class NodeKind : uint8_t {
  kElement,
  kText,
};

/// One attribute on an element node.
struct Attribute {
  std::string name;
  std::string value;
};

namespace internal {

// Bits of the per-node flags column. A node with neither bit set is a
// tombstoned element; kFlagText without kFlagAlive is a tombstoned text
// node. Kind never changes over a node's lifetime.
inline constexpr uint8_t kFlagAlive = 0x1;
inline constexpr uint8_t kFlagText = 0x2;

/// The hot columns: one malloc'd block sliced into seven parallel arrays
/// (5 × NodeId links, 1 × Symbol, 1 × uint8 flags — 25 bytes/node, vs the
/// ~120-byte AoS node this replaced). Growth copies column-by-column so
/// each array stays dense and contiguous.
class NodeColumns {
 public:
  NodeColumns() = default;
  NodeColumns(NodeColumns&& o) noexcept { MoveFrom(o); }
  NodeColumns& operator=(NodeColumns&& o) noexcept {
    if (this != &o) MoveFrom(o);
    return *this;
  }
  NodeColumns(const NodeColumns&) = delete;
  NodeColumns& operator=(const NodeColumns&) = delete;

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }

  /// Appends one row with all links kInvalidNode; returns its index.
  uint32_t PushRow(uint8_t flags, automata::Symbol symbol);

  // Column base pointers (valid until the next PushRow).
  NodeId* parent() { return parent_; }
  NodeId* first_child() { return first_child_; }
  NodeId* last_child() { return last_child_; }
  NodeId* next_sibling() { return next_sibling_; }
  NodeId* prev_sibling() { return prev_sibling_; }
  automata::Symbol* symbol() { return symbol_; }
  uint8_t* flags() { return flags_; }
  const NodeId* parent() const { return parent_; }
  const NodeId* first_child() const { return first_child_; }
  const NodeId* last_child() const { return last_child_; }
  const NodeId* next_sibling() const { return next_sibling_; }
  const NodeId* prev_sibling() const { return prev_sibling_; }
  const automata::Symbol* symbol() const { return symbol_; }
  const uint8_t* flags() const { return flags_; }

  /// Bytes of the arena block (the hot footprint MemoryUsage reports).
  size_t arena_bytes() const { return capacity_ * kBytesPerRow; }

 private:
  static constexpr size_t kBytesPerRow =
      5 * sizeof(NodeId) + sizeof(automata::Symbol) + sizeof(uint8_t);

  void Grow(size_t min_capacity);
  void MoveFrom(NodeColumns& o);

  std::unique_ptr<unsigned char[]> block_;
  size_t size_ = 0;
  size_t capacity_ = 0;
  NodeId* parent_ = nullptr;
  NodeId* first_child_ = nullptr;
  NodeId* last_child_ = nullptr;
  NodeId* next_sibling_ = nullptr;
  NodeId* prev_sibling_ = nullptr;
  automata::Symbol* symbol_ = nullptr;
  uint8_t* flags_ = nullptr;
};

/// Chunked append-only byte arena for label/text payloads. Chunks never
/// move once allocated, so the string_views handed out stay valid for the
/// arena's lifetime (including across Document moves). Oversized payloads
/// get a dedicated chunk.
class StringArena {
 public:
  /// Copies `s` into the arena; the returned view is stable forever.
  std::string_view Add(std::string_view s);

  size_t allocated_bytes() const { return allocated_; }
  size_t used_bytes() const { return used_; }

 private:
  static constexpr size_t kChunkSize = 1 << 16;

  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t last_used_ = 0;      // bytes consumed in chunks_.back()
  size_t last_capacity_ = 0;  // size of chunks_.back()
  size_t allocated_ = 0;
  size_t used_ = 0;
};

}  // namespace internal

/// A mutable XML document: an ordered labeled tree plus attributes.
class Document {
 public:
  Document() = default;

  // Documents are heavyweight; move-only keeps accidental copies out of the
  // validators' hot paths.
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) noexcept = default;
  Document& operator=(Document&&) noexcept = default;

  /// Creates a detached element node with the given tag.
  NodeId CreateElement(std::string_view label);

  /// Creates a detached text node with the given character data.
  NodeId CreateText(std::string_view text);

  /// Sets the document root. The node must be a detached element.
  Status SetRoot(NodeId node);

  /// Appends `child` (detached) as the last child of `parent`.
  Status AppendChild(NodeId parent, NodeId child);

  /// Inserts `node` (detached) immediately before `reference`, which must
  /// have a parent.
  Status InsertBefore(NodeId reference, NodeId node);

  /// Inserts `node` (detached) immediately after `reference`, which must
  /// have a parent.
  Status InsertAfter(NodeId reference, NodeId node);

  /// Inserts `node` (detached) as the first child of `parent`.
  Status InsertFirstChild(NodeId parent, NodeId node);

  /// Detaches `node` from its parent and tombstones it. The node must be a
  /// leaf (the paper's update model deletes leaves only; subtree deletion is
  /// expressed as a bottom-up sequence of leaf deletions).
  Status RemoveLeaf(NodeId node);

  /// Replaces the label of an element node.
  Status Rename(NodeId node, std::string_view new_label);

  /// Replaces the character data of a text node.
  Status SetText(NodeId node, std::string_view text);

  // -- Symbol binding ------------------------------------------------------
  //
  // A document may be bound to an Alphabet (the shared Σ of a schema pair),
  // after which every live element node carries its interned Symbol alongside
  // its label and validators skip the per-node hash lookup entirely. The two
  // flavors differ in who owns Σ:
  //
  //   * Bind(): find-only. Labels outside Σ get automata::kUnboundSymbol.
  //     Safe on a shared, registry-owned alphabet while holding
  //     SchemaRegistry::ReadGuard() — Bind never mutates Σ, and since Σ is
  //     append-only the cached symbols stay valid after the guard drops.
  //   * BindInterning(): interns labels not yet in Σ, so every element gets
  //     a real symbol. Single-writer only (parser, benchmarks, offline
  //     tools); never call this on an alphabet other threads may be reading.
  //
  // After either call, CreateElement/Rename keep node symbols coherent:
  // symbol(n) == alphabet.Find(label(n)) (or kUnboundSymbol on a miss).
  // Binding to a different alphabet re-resolves every live element.

  /// Binds to `alphabet` without mutating it; out-of-Σ labels map to
  /// kUnboundSymbol. Re-resolves all live element nodes.
  Status Bind(std::shared_ptr<const automata::Alphabet> alphabet);

  /// Binds to `alphabet` and interns all current and future labels into it.
  /// The caller must be the alphabet's sole writer (see automata/alphabet.h).
  Status BindInterning(std::shared_ptr<automata::Alphabet> alphabet);

  /// Drops the binding; all element symbols revert to kUnboundSymbol.
  void Unbind();

  bool IsBound() const { return bound_alphabet_ != nullptr; }

  /// True iff this document is bound to exactly `alphabet` (pointer
  /// identity — the validators' cheap precondition for the symbol path).
  bool BoundTo(const automata::Alphabet& alphabet) const {
    return bound_alphabet_.get() == &alphabet;
  }

  /// The bound alphabet, or nullptr.
  const automata::Alphabet* bound_alphabet() const {
    return bound_alphabet_.get();
  }

  /// Interned symbol of an element node: alphabet.Find(label) at binding /
  /// creation / rename time, kUnboundSymbol for unbound documents, out-of-Σ
  /// labels, and text nodes.
  automata::Symbol symbol(NodeId id) const { return cols_.symbol()[id]; }

  // -- Accessors -----------------------------------------------------------

  NodeId root() const { return root_; }
  bool has_root() const { return root_ != kInvalidNode; }

  bool IsValidId(NodeId id) const { return id < cols_.size(); }
  bool IsAlive(NodeId id) const {
    return IsValidId(id) && (cols_.flags()[id] & internal::kFlagAlive) != 0;
  }

  NodeKind kind(NodeId id) const {
    return (cols_.flags()[id] & internal::kFlagText) != 0 ? NodeKind::kText
                                                          : NodeKind::kElement;
  }
  bool IsElement(NodeId id) const {
    return (cols_.flags()[id] & internal::kFlagText) == 0;
  }
  bool IsText(NodeId id) const {
    return (cols_.flags()[id] & internal::kFlagText) != 0;
  }

  /// Tag of an element node, or empty for text nodes. The view points into
  /// the document's string arena: stable across edits and moves (arena
  /// chunks never move or shrink).
  std::string_view label(NodeId id) const {
    return IsElement(id) ? payload_[id] : std::string_view();
  }

  /// Character data of a text node, or empty for elements. Stability as
  /// for label(), EXCEPT that SetText may overwrite the bytes in place —
  /// don't cache text views across text edits to the same node.
  std::string_view text(NodeId id) const {
    return IsText(id) ? payload_[id] : std::string_view();
  }

  NodeId parent(NodeId id) const { return cols_.parent()[id]; }
  NodeId first_child(NodeId id) const { return cols_.first_child()[id]; }
  NodeId last_child(NodeId id) const { return cols_.last_child()[id]; }
  NodeId next_sibling(NodeId id) const { return cols_.next_sibling()[id]; }
  NodeId prev_sibling(NodeId id) const { return cols_.prev_sibling()[id]; }

  bool HasChildren(NodeId id) const {
    return cols_.first_child()[id] != kInvalidNode;
  }

  /// Number of children of `id` (O(children)).
  size_t CountChildren(NodeId id) const;

  /// Children of `id` in document order (O(children), allocates).
  std::vector<NodeId> Children(NodeId id) const;

  /// Attributes of an element node.
  const std::vector<Attribute>& attributes(NodeId id) const {
    uint32_t slot = attr_slot_[id];
    return slot == kNoAttrSlot ? EmptyAttributes() : attr_slots_[slot];
  }

  /// Adds an attribute to an element node (no duplicate-name check; the
  /// parser enforces uniqueness at parse time).
  Status AddAttribute(NodeId id, std::string_view name, std::string_view value);

  /// Value of the named attribute, or nullptr when absent.
  const std::string* FindAttribute(NodeId id, std::string_view name) const;

  /// Sets (adding or overwriting) an attribute on an element node.
  Status SetAttribute(NodeId id, std::string_view name,
                      std::string_view value);

  /// Removes the named attribute; OK even when absent.
  Status RemoveAttribute(NodeId id, std::string_view name);

  /// Concatenation of the direct text children of `id`; the "simple value"
  /// an element with simple type carries.
  std::string SimpleContent(NodeId id) const;

  /// Total nodes ever created (tombstones included).
  size_t NodeCount() const { return cols_.size(); }

  /// Number of live nodes in the subtree rooted at `id` (O(subtree)).
  size_t SubtreeSize(NodeId id) const;

  /// True if all text children of `id` are whitespace-only. Used by the
  /// validators to decide whether mixed text is ignorable.
  bool HasOnlyWhitespaceText(NodeId id) const;

  // -- Hot view ------------------------------------------------------------

  /// Raw column pointers for the validators' traversal hot loops: one load
  /// per step straight off a dense array, no Document indirection, plus
  /// software prefetch of the next row. Pointers are invalidated by node
  /// creation (column growth); re-fetch after any CreateElement/CreateText.
  /// Structural edits (splices, renames, deletes) do NOT invalidate it.
  struct HotView {
    const uint8_t* flags;
    const automata::Symbol* symbol;
    const NodeId* parent;
    const NodeId* first_child;
    const NodeId* last_child;
    const NodeId* next_sibling;
    const NodeId* prev_sibling;

    bool IsElement(NodeId id) const {
      return (flags[id] & internal::kFlagText) == 0;
    }
    bool IsText(NodeId id) const {
      return (flags[id] & internal::kFlagText) != 0;
    }

    /// Hints the row of `id` into cache: the columns a frontier walk reads
    /// next (links + symbol). No-op when `id` is kInvalidNode.
    void PrefetchRow(NodeId id) const {
#if defined(__GNUC__) || defined(__clang__)
      if (id == kInvalidNode) return;
      __builtin_prefetch(&next_sibling[id]);
      __builtin_prefetch(&first_child[id]);
      __builtin_prefetch(&symbol[id]);
#else
      (void)id;
#endif
    }
  };

  HotView hot_view() const {
    return HotView{cols_.flags(),        cols_.symbol(),
                   cols_.parent(),       cols_.first_child(),
                   cols_.last_child(),   cols_.next_sibling(),
                   cols_.prev_sibling()};
  }

  // -- Memory accounting ---------------------------------------------------

  /// Per-document footprint of the SoA storage, split by region. Costs
  /// O(attribute slots); meant for gauges and bench stamps, not hot paths.
  struct MemoryStats {
    size_t topology_bytes = 0;      // hot column arena (flags..siblings)
    size_t payload_ref_bytes = 0;   // cold per-node payload views
    size_t string_arena_bytes = 0;  // label/text byte chunks (allocated)
    size_t attribute_bytes = 0;     // side table incl. string capacities
    size_t total() const {
      return topology_bytes + payload_ref_bytes + string_arena_bytes +
             attribute_bytes;
    }
  };
  MemoryStats MemoryUsage() const;

 private:
  static constexpr uint32_t kNoAttrSlot = 0xFFFFFFFFu;

  static const std::vector<Attribute>& EmptyAttributes() {
    static const std::vector<Attribute> empty;
    return empty;
  }

  Status CheckAttachable(NodeId node) const;

  /// Resolves `label` through the current binding (intern or find).
  automata::Symbol ResolveSymbol(std::string_view label);

  /// Rebinds node `id`'s payload to `bytes`, overwriting in place when the
  /// new payload fits in the old range (no arena growth on shrinking
  /// edits); otherwise appends a fresh range.
  void ReplacePayload(NodeId id, std::string_view bytes);

  /// The attribute vector of `id`, creating its side-table slot on demand.
  std::vector<Attribute>& MutableAttributes(NodeId id);

  internal::NodeColumns cols_;
  internal::StringArena strings_;
  // Cold per-node columns (never touched by the traversal loops).
  std::vector<std::string_view> payload_;  // label (element) / text (text)
  std::vector<uint32_t> attr_slot_;        // kNoAttrSlot when attribute-free
  std::vector<std::vector<Attribute>> attr_slots_;

  NodeId root_ = kInvalidNode;

  // bound_alphabet_ is the read view; intern_alphabet_ is non-null only
  // after BindInterning and aliases the same object, mutably.
  std::shared_ptr<const automata::Alphabet> bound_alphabet_;
  std::shared_ptr<automata::Alphabet> intern_alphabet_;
};

/// Iterates the element children of `id` (skipping text nodes), calling
/// `fn(child)` in document order. Fn: void(NodeId).
template <typename Fn>
void ForEachElementChild(const Document& doc, NodeId id, Fn&& fn) {
  for (NodeId c = doc.first_child(id); c != kInvalidNode;
       c = doc.next_sibling(c)) {
    if (doc.IsElement(c)) fn(c);
  }
}

/// Non-allocating range over the element children of a node, in document
/// order. The validators' replacement for the allocating ElementChildren /
/// ChildLabelString helpers: `for (NodeId c : ElementChildRange(doc, id))`
/// walks the sibling chain directly. Iterators are invalidated by structural
/// edits to the parent's child list.
class ElementChildRange {
 public:
  class iterator {
   public:
    using value_type = NodeId;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    iterator() : doc_(nullptr), cur_(kInvalidNode) {}
    iterator(const Document* doc, NodeId cur) : doc_(doc), cur_(cur) {
      SkipText();
    }

    NodeId operator*() const { return cur_; }
    iterator& operator++() {
      cur_ = doc_->next_sibling(cur_);
      SkipText();
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const iterator& o) const { return cur_ == o.cur_; }
    bool operator!=(const iterator& o) const { return cur_ != o.cur_; }

   private:
    void SkipText() {
      while (cur_ != kInvalidNode && !doc_->IsElement(cur_)) {
        cur_ = doc_->next_sibling(cur_);
      }
    }
    const Document* doc_;
    NodeId cur_;
  };

  ElementChildRange(const Document& doc, NodeId parent)
      : doc_(&doc), parent_(parent) {}

  iterator begin() const { return iterator(doc_, doc_->first_child(parent_)); }
  iterator end() const { return iterator(); }
  bool empty() const { return begin() == end(); }

 private:
  const Document* doc_;
  NodeId parent_;
};

/// Collects the element children of `id` in document order. Allocates; kept
/// for tests and non-hot callers — use ElementChildRange on validator paths.
std::vector<NodeId> ElementChildren(const Document& doc, NodeId id);

/// The string of child element labels of `id` — the paper's
/// `constructstring(children(e))` — in document order. Allocates; hot paths
/// read `doc.symbol(c)` over an ElementChildRange instead.
std::vector<std::string_view> ChildLabelString(const Document& doc, NodeId id);

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_TREE_H_
