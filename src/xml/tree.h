// Ordered labeled trees (the paper's document abstraction, Section 3).
//
// A Document owns its nodes in a contiguous arena; a NodeId is an index into
// that arena. Nodes are linked first-child / last-child / next-sibling /
// prev-sibling / parent, so all the traversals the validators need are O(1)
// per step and structural edits are O(1) pointer splices. NodeIds remain
// stable across edits (deleted nodes are tombstoned, never reused), which is
// what lets the update log of Section 3.3 refer to nodes safely.
//
// Element nodes carry a label (tag) and attributes; text nodes carry
// character data and correspond to the paper's chi-labeled leaves.

#ifndef XMLREVAL_XML_TREE_H_
#define XMLREVAL_XML_TREE_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "automata/alphabet.h"
#include "common/result.h"
#include "common/status.h"

namespace xmlreval::xml {

/// Index of a node within its Document. kInvalidNode plays the role of null.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

enum class NodeKind : uint8_t {
  kElement,
  kText,
};

/// One attribute on an element node.
struct Attribute {
  std::string name;
  std::string value;
};

/// A mutable XML document: an ordered labeled tree plus attributes.
class Document {
 public:
  Document() = default;

  // Documents are heavyweight; move-only keeps accidental copies out of the
  // validators' hot paths.
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) noexcept = default;
  Document& operator=(Document&&) noexcept = default;

  /// Creates a detached element node with the given tag.
  NodeId CreateElement(std::string_view label);

  /// Creates a detached text node with the given character data.
  NodeId CreateText(std::string_view text);

  /// Sets the document root. The node must be a detached element.
  Status SetRoot(NodeId node);

  /// Appends `child` (detached) as the last child of `parent`.
  Status AppendChild(NodeId parent, NodeId child);

  /// Inserts `node` (detached) immediately before `reference`, which must
  /// have a parent.
  Status InsertBefore(NodeId reference, NodeId node);

  /// Inserts `node` (detached) immediately after `reference`, which must
  /// have a parent.
  Status InsertAfter(NodeId reference, NodeId node);

  /// Inserts `node` (detached) as the first child of `parent`.
  Status InsertFirstChild(NodeId parent, NodeId node);

  /// Detaches `node` from its parent and tombstones it. The node must be a
  /// leaf (the paper's update model deletes leaves only; subtree deletion is
  /// expressed as a bottom-up sequence of leaf deletions).
  Status RemoveLeaf(NodeId node);

  /// Replaces the label of an element node.
  Status Rename(NodeId node, std::string_view new_label);

  /// Replaces the character data of a text node.
  Status SetText(NodeId node, std::string_view text);

  // -- Symbol binding ------------------------------------------------------
  //
  // A document may be bound to an Alphabet (the shared Σ of a schema pair),
  // after which every live element node carries its interned Symbol alongside
  // its label and validators skip the per-node hash lookup entirely. The two
  // flavors differ in who owns Σ:
  //
  //   * Bind(): find-only. Labels outside Σ get automata::kUnboundSymbol.
  //     Safe on a shared, registry-owned alphabet while holding
  //     SchemaRegistry::ReadGuard() — Bind never mutates Σ, and since Σ is
  //     append-only the cached symbols stay valid after the guard drops.
  //   * BindInterning(): interns labels not yet in Σ, so every element gets
  //     a real symbol. Single-writer only (parser, benchmarks, offline
  //     tools); never call this on an alphabet other threads may be reading.
  //
  // After either call, CreateElement/Rename keep node symbols coherent:
  // symbol(n) == alphabet.Find(label(n)) (or kUnboundSymbol on a miss).
  // Binding to a different alphabet re-resolves every live element.

  /// Binds to `alphabet` without mutating it; out-of-Σ labels map to
  /// kUnboundSymbol. Re-resolves all live element nodes.
  Status Bind(std::shared_ptr<const automata::Alphabet> alphabet);

  /// Binds to `alphabet` and interns all current and future labels into it.
  /// The caller must be the alphabet's sole writer (see automata/alphabet.h).
  Status BindInterning(std::shared_ptr<automata::Alphabet> alphabet);

  /// Drops the binding; all element symbols revert to kUnboundSymbol.
  void Unbind();

  bool IsBound() const { return bound_alphabet_ != nullptr; }

  /// True iff this document is bound to exactly `alphabet` (pointer
  /// identity — the validators' cheap precondition for the symbol path).
  bool BoundTo(const automata::Alphabet& alphabet) const {
    return bound_alphabet_.get() == &alphabet;
  }

  /// The bound alphabet, or nullptr.
  const automata::Alphabet* bound_alphabet() const {
    return bound_alphabet_.get();
  }

  /// Interned symbol of an element node: alphabet.Find(label) at binding /
  /// creation / rename time, kUnboundSymbol for unbound documents, out-of-Σ
  /// labels, and text nodes.
  automata::Symbol symbol(NodeId id) const { return nodes_[id].symbol; }

  // -- Accessors -----------------------------------------------------------

  NodeId root() const { return root_; }
  bool has_root() const { return root_ != kInvalidNode; }

  bool IsValidId(NodeId id) const { return id < nodes_.size(); }
  bool IsAlive(NodeId id) const { return IsValidId(id) && nodes_[id].alive; }

  NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  bool IsElement(NodeId id) const {
    return nodes_[id].kind == NodeKind::kElement;
  }
  bool IsText(NodeId id) const { return nodes_[id].kind == NodeKind::kText; }

  /// Tag of an element node, or empty for text nodes.
  const std::string& label(NodeId id) const { return nodes_[id].label; }

  /// Character data of a text node, or empty for elements.
  const std::string& text(NodeId id) const { return nodes_[id].text; }

  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  NodeId first_child(NodeId id) const { return nodes_[id].first_child; }
  NodeId last_child(NodeId id) const { return nodes_[id].last_child; }
  NodeId next_sibling(NodeId id) const { return nodes_[id].next_sibling; }
  NodeId prev_sibling(NodeId id) const { return nodes_[id].prev_sibling; }

  bool HasChildren(NodeId id) const {
    return nodes_[id].first_child != kInvalidNode;
  }

  /// Number of children of `id` (O(children)).
  size_t CountChildren(NodeId id) const;

  /// Children of `id` in document order (O(children), allocates).
  std::vector<NodeId> Children(NodeId id) const;

  /// Attributes of an element node.
  const std::vector<Attribute>& attributes(NodeId id) const {
    return nodes_[id].attributes;
  }

  /// Adds an attribute to an element node (no duplicate-name check; the
  /// parser enforces uniqueness at parse time).
  Status AddAttribute(NodeId id, std::string_view name, std::string_view value);

  /// Value of the named attribute, or nullptr when absent.
  const std::string* FindAttribute(NodeId id, std::string_view name) const;

  /// Sets (adding or overwriting) an attribute on an element node.
  Status SetAttribute(NodeId id, std::string_view name,
                      std::string_view value);

  /// Removes the named attribute; OK even when absent.
  Status RemoveAttribute(NodeId id, std::string_view name);

  /// Concatenation of the direct text children of `id`; the "simple value"
  /// an element with simple type carries.
  std::string SimpleContent(NodeId id) const;

  /// Total nodes ever created (tombstones included).
  size_t NodeCount() const { return nodes_.size(); }

  /// Number of live nodes in the subtree rooted at `id` (O(subtree)).
  size_t SubtreeSize(NodeId id) const;

  /// True if all text children of `id` are whitespace-only. Used by the
  /// validators to decide whether mixed text is ignorable.
  bool HasOnlyWhitespaceText(NodeId id) const;

 private:
  struct Node {
    NodeKind kind = NodeKind::kElement;
    bool alive = true;
    automata::Symbol symbol = automata::kUnboundSymbol;
    std::string label;  // element tag; empty for text nodes
    std::string text;   // character data; empty for elements
    NodeId parent = kInvalidNode;
    NodeId first_child = kInvalidNode;
    NodeId last_child = kInvalidNode;
    NodeId next_sibling = kInvalidNode;
    NodeId prev_sibling = kInvalidNode;
    std::vector<Attribute> attributes;
  };

  Status CheckAttachable(NodeId node) const;

  /// Resolves `label` through the current binding (intern or find).
  automata::Symbol ResolveSymbol(std::string_view label);

  std::vector<Node> nodes_;
  NodeId root_ = kInvalidNode;

  // bound_alphabet_ is the read view; intern_alphabet_ is non-null only
  // after BindInterning and aliases the same object, mutably.
  std::shared_ptr<const automata::Alphabet> bound_alphabet_;
  std::shared_ptr<automata::Alphabet> intern_alphabet_;
};

/// Iterates the element children of `id` (skipping text nodes), calling
/// `fn(child)` in document order. Fn: void(NodeId).
template <typename Fn>
void ForEachElementChild(const Document& doc, NodeId id, Fn&& fn) {
  for (NodeId c = doc.first_child(id); c != kInvalidNode;
       c = doc.next_sibling(c)) {
    if (doc.IsElement(c)) fn(c);
  }
}

/// Non-allocating range over the element children of a node, in document
/// order. The validators' replacement for the allocating ElementChildren /
/// ChildLabelString helpers: `for (NodeId c : ElementChildRange(doc, id))`
/// walks the sibling chain directly. Iterators are invalidated by structural
/// edits to the parent's child list.
class ElementChildRange {
 public:
  class iterator {
   public:
    using value_type = NodeId;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    iterator() : doc_(nullptr), cur_(kInvalidNode) {}
    iterator(const Document* doc, NodeId cur) : doc_(doc), cur_(cur) {
      SkipText();
    }

    NodeId operator*() const { return cur_; }
    iterator& operator++() {
      cur_ = doc_->next_sibling(cur_);
      SkipText();
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const iterator& o) const { return cur_ == o.cur_; }
    bool operator!=(const iterator& o) const { return cur_ != o.cur_; }

   private:
    void SkipText() {
      while (cur_ != kInvalidNode && !doc_->IsElement(cur_)) {
        cur_ = doc_->next_sibling(cur_);
      }
    }
    const Document* doc_;
    NodeId cur_;
  };

  ElementChildRange(const Document& doc, NodeId parent)
      : doc_(&doc), parent_(parent) {}

  iterator begin() const { return iterator(doc_, doc_->first_child(parent_)); }
  iterator end() const { return iterator(); }
  bool empty() const { return begin() == end(); }

 private:
  const Document* doc_;
  NodeId parent_;
};

/// Collects the element children of `id` in document order. Allocates; kept
/// for tests and non-hot callers — use ElementChildRange on validator paths.
std::vector<NodeId> ElementChildren(const Document& doc, NodeId id);

/// The string of child element labels of `id` — the paper's
/// `constructstring(children(e))` — in document order. Allocates; hot paths
/// read `doc.symbol(c)` over an ElementChildRange instead.
std::vector<std::string_view> ChildLabelString(const Document& doc, NodeId id);

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_TREE_H_
