// Incremental (push-mode) XML event parsing.
//
// PushParser is the chunked counterpart of ParseXmlEvents: callers Feed()
// byte chunks as they arrive (pipe, socket, mmap window) and the parser
// emits the same SAX events with the same well-formedness checks — the
// document is never resident as one buffer. Live state is
//
//   * the open-element tag stack                    — O(document depth)
//   * one carry buffer for a construct split across
//     a chunk boundary (a tag, a DOCTYPE, a char
//     reference)                                    — bounded by the
//                                                     longest single tag
//   * the pending text of the current text node     — bounded by the
//                                                     largest text node
//
// none of which grows with document size. Comments, CDATA sections and
// processing instructions of any length cross chunk boundaries with O(1)
// state (rolling terminator match), never through the carry buffer.
//
// Differences from ParseXmlEvents, by design:
//   * Text is always coalesced (one Characters event per run, regardless
//     of chunking); ParseOptions::coalesce_text is ignored.
//   * Parse errors report absolute byte offsets, not line:column —
//     tracking lines would touch every byte, defeating skip-scanning.
//
// SkipCurrentSubtree() is the hook for schema-cast subsumption skipping
// (core/streaming_validator.h): called from within StartElement, it stops
// tokenizing and hands the bytes to SkipScanner until the element's
// matching end tag. The skipped element gets NO EndElement event and its
// descendants produce no events at all; bytes so consumed are tallied in
// bytes_skipped().

#ifndef XMLREVAL_XML_PUSH_PARSER_H_
#define XMLREVAL_XML_PUSH_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "xml/sax.h"
#include "xml/skip_scanner.h"

namespace xmlreval::xml {

class PushParser {
 public:
  /// `handler` must outlive the parser. Honors
  /// ParseOptions::skip_whitespace_text; text is always coalesced.
  explicit PushParser(SaxHandler* handler, const ParseOptions& options = {});

  PushParser(const PushParser&) = delete;
  PushParser& operator=(const PushParser&) = delete;

  /// Consumes the next chunk. Returns non-OK on the first well-formedness
  /// error or handler abort; the parser is then latched and every later
  /// Feed/Finish returns the same status.
  Status Feed(std::string_view chunk);

  /// Declares end of input; checks that the document completed. Idempotent.
  Status Finish();

  /// Callable ONLY from inside SaxHandler::StartElement: suppresses the
  /// just-started element's subtree. For a self-closing element this only
  /// cancels its EndElement; otherwise the parser switches to the raw-byte
  /// SkipScanner until the matching end tag.
  void SkipCurrentSubtree();

  uint64_t bytes_fed() const { return bytes_fed_; }
  /// Bytes consumed by the raw-byte skip scanner (never tokenized).
  uint64_t bytes_skipped() const { return bytes_skipped_; }
  /// High-water mark of the chunk-boundary carry buffer.
  uint64_t peak_carry_bytes() const { return peak_carry_; }
  /// Currently open elements (excludes a subtree being skipped).
  size_t depth() const { return open_tags_.size(); }

 private:
  enum class Mode : uint8_t {
    kProlog,   // before the root element: XML decl, comments, DOCTYPE, PIs
    kContent,  // inside the root element (or at its start tag)
    kSkip,     // raw-byte subtree skip via SkipScanner
    kEpilog,   // after the root closed: whitespace, comments, PIs only
  };

  enum class Sub : uint8_t {
    kText,         // character data (content) / whitespace (prolog, epilog)
    kMarkupLt,     // carry == "<": classify the construct
    kMarkupBang,   // carry == "<!...": comment / CDATA / DOCTYPE dispatch
    kStartTagAcc,  // accumulating a start tag into carry (quote-aware)
    kEndTagAcc,    // accumulating an end tag into carry
    kDoctypeAcc,   // accumulating a DOCTYPE into carry (bracket/quote-aware)
    kCharRef,      // accumulating an '&...;' reference into carry
    kComment,      // inside "<!--": scan for '-'
    kCommentDash,
    kCommentDashDash,
    kCData,        // inside CDATA: bytes join pending text
    kCDataBracket,
    kCDataBracketBracket,
    kPi,           // inside "<?": scan for '?'
    kPiQ,
  };

  // One pass over the current chunk view; returns on error or drain.
  Status Run();
  Status RunSkip();
  Status RunContentText();
  Status RunMiscText();
  Status RunMarkupLt();
  Status RunMarkupBang();
  Status RunStartTagAcc();
  Status RunEndTagAcc();
  Status RunDoctypeAcc();
  Status RunCharRef();
  Status RunComment();
  Status RunCData();
  Status RunPi();

  // Complete-construct handlers over carry_ (mirror EventParser).
  Status HandleStartTag();
  Status HandleEndTag();
  Status HandleDoctype();
  Status HandleCharRef();

  Status EmitText();
  /// Decodes one reference; `text[*pos]` is the char after '&'. Mirrors
  /// EventParser::AppendReference over in-memory tag text.
  Status AppendReferenceAt(std::string_view text, size_t* pos,
                           std::string* out, uint64_t text_offset);

  void CarryByte(char c);
  void CarryStart(char c);

  uint64_t Offset() const;  // absolute offset of the next unread byte
  Status ErrorAt(uint64_t offset, std::string_view message);
  Status Error(std::string_view message) { return ErrorAt(Offset(), message); }

  SaxHandler* handler_;
  ParseOptions options_;

  Mode mode_ = Mode::kProlog;
  Sub sub_ = Sub::kText;

  // The view being consumed by the current Feed() call.
  const char* p_ = nullptr;
  const char* end_ = nullptr;
  uint64_t end_offset_ = 0;  // absolute offset of end_

  std::string carry_;
  uint64_t carry_offset_ = 0;  // absolute offset of carry_[0]
  char tag_quote_ = 0;         // active quote inside kStartTagAcc
  char doctype_quote_ = 0;
  int doctype_depth_ = 0;      // '[' nesting inside kDoctypeAcc

  std::string pending_text_;
  std::vector<std::string> open_tags_;
  SkipScanner skipper_;
  bool skip_is_root_ = false;

  // Set by SkipCurrentSubtree; only honored during StartElement dispatch.
  bool in_start_element_ = false;
  bool skip_requested_ = false;

  bool finished_ = false;
  bool failed_ = false;
  Status final_status_;  // latched first error, or the Finish() result

  uint64_t bytes_fed_ = 0;
  uint64_t bytes_skipped_ = 0;
  uint64_t peak_carry_ = 0;

  std::vector<std::pair<std::string, std::string>> attr_storage_;
  std::vector<SaxAttribute> attr_views_;
};

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_PUSH_PARSER_H_
