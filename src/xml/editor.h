// DocumentEditor: the update model of Section 3.3.
//
// The paper's three update kinds — rename an element label, insert a new
// leaf, delete a leaf — are applied through this editor, which maintains the
// Δ-encoding of the modified tree T':
//
//   * a renamed node corresponds to a Δ^a_b label (old label a retained),
//   * an inserted node to Δ^ε_b,
//   * a deleted node to Δ^a_ε — the node REMAINS physically linked in the
//     tree, marked deleted, so that both the old label string (Proj_old) and
//     the new one (Proj_new) can be read off each content model, and so
//     Dewey numbers stay consistent with the encoded tree,
//   * a text-value update to Δ^χ_χ (label unchanged, content dirty).
//
// Seal() freezes the edit session and produces a ModificationIndex: the
// Dewey-path trie implementing modified() plus per-node annotations, which
// core::ModValidator consumes. Commit() physically removes deleted nodes
// and drops the annotations, yielding the plain edited document.

#ifndef XMLREVAL_XML_EDITOR_H_
#define XMLREVAL_XML_EDITOR_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "automata/alphabet.h"
#include "common/result.h"
#include "xml/dewey.h"
#include "xml/path_trie.h"
#include "xml/tree.h"

namespace xmlreval::xml {

/// How a single node was touched by the edit session.
enum class DeltaKind : uint8_t {
  kUnchanged,
  kRenamed,   // Δ^a_b
  kInserted,  // Δ^ε_b
  kDeleted,   // Δ^a_ε
  kTextEdited,  // Δ^χ_χ — text node whose character data changed
};

/// Read-only view of a sealed edit session.
class ModificationIndex {
 public:
  /// The paper's modified() predicate: does the subtree rooted at the node
  /// with Dewey path `path` (in the encoded tree) contain any modification?
  bool SubtreeModified(const DeweyPath& path) const {
    return trie_.ContainsPrefixedBy(path);
  }

  /// Cursor for lockstep traversal (O(1) per tree step).
  TrieCursor Cursor() const { return TrieCursor(trie_); }

  DeltaKind Kind(NodeId node) const {
    auto it = deltas_.find(node);
    return it == deltas_.end() ? DeltaKind::kUnchanged : it->second.kind;
  }

  bool IsDeleted(NodeId node) const { return Kind(node) == DeltaKind::kDeleted; }
  bool IsInserted(NodeId node) const {
    return Kind(node) == DeltaKind::kInserted;
  }

  /// The node's label in the ORIGINAL tree T (Proj_old): the stored old
  /// label for renamed nodes, nullopt for inserted nodes (ε), the current
  /// label otherwise.
  std::optional<std::string> OldLabel(const Document& doc, NodeId node) const;

  /// The node's label in the edited tree T' (Proj_new): nullopt for deleted
  /// nodes (ε), the current label otherwise.
  std::optional<std::string> NewLabel(const Document& doc, NodeId node) const;

  /// Symbol-level Proj_old: the node's interned symbol in the ORIGINAL tree
  /// T, nullopt for ε (inserted / never-existed). Renamed and deleted nodes
  /// return the symbol captured at edit time; if the document was bound only
  /// after the edit, the stored old label is re-resolved through the bound
  /// alphabet. Out-of-Σ old labels (and unbound documents) yield
  /// automata::kUnboundSymbol, which never matches any transition.
  std::optional<automata::Symbol> OldSymbol(const Document& doc,
                                            NodeId node) const;

  /// Symbol-level Proj_new: nullopt for deleted nodes (ε), doc.symbol(node)
  /// otherwise.
  std::optional<automata::Symbol> NewSymbol(const Document& doc,
                                            NodeId node) const {
    auto it = deltas_.find(node);
    if (it != deltas_.end() && it->second.kind == DeltaKind::kDeleted) {
      return std::nullopt;
    }
    return doc.symbol(node);
  }

  size_t update_count() const { return update_count_; }
  bool empty() const { return update_count_ == 0; }

 private:
  friend class DocumentEditor;

  struct Delta {
    DeltaKind kind;
    std::string old_label;   // original label in T, for kRenamed/kDeleted
    // Interned symbol of old_label, captured at edit time (kUnboundSymbol
    // when the document was unbound at that point).
    automata::Symbol old_symbol = automata::kUnboundSymbol;
    bool never_existed = false;  // inserted then deleted within the session
  };

  PathTrie trie_;
  std::unordered_map<NodeId, Delta> deltas_;
  size_t update_count_ = 0;
};

/// One editor operation in replayable form: the edit-script vocabulary
/// shared by the random workload generator, the update-safety analyzer
/// (src/analysis/), and the service's SubmitEditStream entry point. Node
/// ids refer to the document the script is applied to; since the arena
/// assigns ids deterministically, a script recorded against one parse of a
/// document replays exactly against another parse of the same document.
struct EditOp {
  enum class Kind : uint8_t {
    kRename,                   // node = element, value = new label
    kInsertElementFirstChild,  // node = parent, value = label
    kInsertElementBefore,      // node = reference, value = label
    kInsertElementAfter,       // node = reference, value = label
    kInsertTextFirstChild,     // node = parent, value = character data
    kInsertTextBefore,         // node = reference, value = character data
    kInsertTextAfter,          // node = reference, value = character data
    kDeleteLeaf,               // node = effective leaf
    kUpdateText,               // node = text node, value = character data
  };
  Kind kind = Kind::kRename;
  NodeId node = kInvalidNode;
  std::string value;
};

/// Applies paper-model updates to a Document and records them.
class DocumentEditor {
 public:
  explicit DocumentEditor(Document* doc) : doc_(doc) {}

  /// Update kind 1: replace the label of an element node.
  Status RenameElement(NodeId node, std::string_view new_label);

  /// Update kind 2: insert a new leaf element. Returns the new node.
  Result<NodeId> InsertElementBefore(NodeId reference, std::string_view label);
  Result<NodeId> InsertElementAfter(NodeId reference, std::string_view label);
  Result<NodeId> InsertElementFirstChild(NodeId parent, std::string_view label);

  /// Update kind 2 for χ leaves: insert a new text leaf.
  Result<NodeId> InsertTextFirstChild(NodeId parent, std::string_view text);
  Result<NodeId> InsertTextBefore(NodeId reference, std::string_view text);
  Result<NodeId> InsertTextAfter(NodeId reference, std::string_view text);

  /// Update kind 3: delete a leaf. A node all of whose children are already
  /// deleted counts as a leaf, so subtrees are deleted bottom-up.
  Status DeleteLeaf(NodeId node);

  /// Replace the character data of a text node (a Δ^χ_χ modification).
  Status UpdateText(NodeId node, std::string_view text);

  /// Replays one recorded operation (dispatch over EditOp::Kind).
  Status Apply(const EditOp& op);

  /// Freezes the session: computes the Dewey trie of all touched nodes
  /// against the final encoded tree and returns the index. The editor must
  /// not be used afterwards.
  ModificationIndex Seal();

  /// Physically removes deleted nodes from the document. Call after
  /// validation, when the Δ-encoding is no longer needed.
  Status Commit();

  /// Whether `node` has been deleted within this (unsealed) session.
  /// Callers building edit scripts use this to skip Δ^a_ε nodes.
  bool IsDeleted(NodeId node) const { return index_.IsDeleted(node); }

  size_t update_count() const { return index_.update_count_; }

 private:
  Status MarkTouched(NodeId node, DeltaKind kind, std::string old_label = "",
                     automata::Symbol old_symbol = automata::kUnboundSymbol);

  /// True if `node` has no live (non-deleted) children.
  bool EffectiveLeaf(NodeId node) const;

  Document* doc_;
  ModificationIndex index_;
  std::unordered_set<NodeId> touched_;  // nodes whose paths go into the trie
  std::vector<NodeId> deleted_nodes_;   // captured at Seal() for Commit()
  bool sealed_ = false;
};

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_EDITOR_H_
