#include "xml/dewey.h"

#include <algorithm>

namespace xmlreval::xml {

DeweyPath DeweyPath::Of(const Document& doc, NodeId node) {
  std::vector<uint32_t> components;
  NodeId current = node;
  while (doc.parent(current) != kInvalidNode) {
    uint32_t ordinal = 0;
    for (NodeId s = doc.prev_sibling(current); s != kInvalidNode;
         s = doc.prev_sibling(s)) {
      ++ordinal;
    }
    components.push_back(ordinal);
    current = doc.parent(current);
  }
  std::reverse(components.begin(), components.end());
  return DeweyPath(std::move(components));
}

DeweyPath DeweyPath::Relative(const Document& doc, NodeId node,
                              NodeId ancestor) {
  std::vector<uint32_t> components;
  NodeId current = node;
  while (current != ancestor && doc.parent(current) != kInvalidNode) {
    uint32_t ordinal = 0;
    for (NodeId s = doc.prev_sibling(current); s != kInvalidNode;
         s = doc.prev_sibling(s)) {
      ++ordinal;
    }
    components.push_back(ordinal);
    current = doc.parent(current);
  }
  std::reverse(components.begin(), components.end());
  return DeweyPath(std::move(components));
}

DeweyPath DeweyPath::Child(uint32_t ordinal) const {
  std::vector<uint32_t> components = components_;
  components.push_back(ordinal);
  return DeweyPath(std::move(components));
}

bool DeweyPath::IsPrefixOf(const DeweyPath& other) const {
  if (components_.size() > other.components_.size()) return false;
  return std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

std::string DeweyPath::ToString() const {
  if (components_.empty()) return "ε";
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(components_[i]);
  }
  return out;
}

}  // namespace xmlreval::xml
