#include "xml/parser.h"

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "xml/sax.h"

namespace xmlreval::xml {
namespace {

// Recursive-descent cursor over the input with line/column tracking.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool Match(char c) {
    if (AtEnd() || Peek() != c) return false;
    Advance();
    return true;
  }

  bool MatchLiteral(std::string_view lit) {
    if (input_.substr(pos_, lit.size()) != lit) return false;
    for (size_t i = 0; i < lit.size(); ++i) Advance();
    return true;
  }

  bool StartsWith(std::string_view lit) const {
    return input_.substr(pos_, lit.size()) == lit;
  }

  void SkipWhitespace() {
    while (!AtEnd() && IsXmlWhitespace(Peek())) Advance();
  }

  Status Error(std::string_view msg) const {
    return Status::ParseError("XML parse error at " + std::to_string(line_) +
                              ":" + std::to_string(column_) + ": " +
                              std::string(msg));
  }

  size_t pos() const { return pos_; }
  std::string_view Slice(size_t begin, size_t end) const {
    return input_.substr(begin, end - begin);
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

// The event-producing core. Pushes well-formedness-checked SAX events into
// the handler; maintains only the open-element tag stack.
class EventParser {
 public:
  EventParser(std::string_view input, const ParseOptions& options,
              SaxHandler* handler)
      : cursor_(input), options_(options), handler_(handler) {}

  Status Parse() {
    RETURN_IF_ERROR(ParseProlog());
    cursor_.SkipWhitespace();
    if (cursor_.AtEnd() || cursor_.Peek() != '<') {
      return cursor_.Error("expected root element");
    }
    RETURN_IF_ERROR(ParseContent());
    RETURN_IF_ERROR(SkipMisc());
    if (!cursor_.AtEnd()) {
      return cursor_.Error("content after document element");
    }
    return Status::OK();
  }

 private:
  Status ParseProlog() {
    cursor_.SkipWhitespace();
    if (cursor_.StartsWith("<?xml")) {
      RETURN_IF_ERROR(SkipPi());
    }
    while (true) {
      cursor_.SkipWhitespace();
      if (cursor_.StartsWith("<!--")) {
        RETURN_IF_ERROR(SkipComment());
      } else if (cursor_.StartsWith("<!DOCTYPE")) {
        RETURN_IF_ERROR(ParseDoctype());
      } else if (cursor_.StartsWith("<?")) {
        RETURN_IF_ERROR(SkipPi());
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseDoctype() {
    if (!cursor_.MatchLiteral("<!DOCTYPE")) {
      return cursor_.Error("expected <!DOCTYPE");
    }
    cursor_.SkipWhitespace();
    ASSIGN_OR_RETURN(std::string name, ParseName());
    cursor_.SkipWhitespace();
    // External id: SYSTEM "..." or PUBLIC "..." "..." — skipped.
    if (cursor_.MatchLiteral("SYSTEM")) {
      cursor_.SkipWhitespace();
      RETURN_IF_ERROR(SkipQuotedLiteral());
    } else if (cursor_.MatchLiteral("PUBLIC")) {
      cursor_.SkipWhitespace();
      RETURN_IF_ERROR(SkipQuotedLiteral());
      cursor_.SkipWhitespace();
      RETURN_IF_ERROR(SkipQuotedLiteral());
    }
    cursor_.SkipWhitespace();
    std::string subset;
    if (cursor_.Match('[')) {
      size_t begin = cursor_.pos();
      int depth = 1;
      while (!cursor_.AtEnd()) {
        char c = cursor_.Peek();
        if (c == '[') ++depth;
        if (c == ']') {
          --depth;
          if (depth == 0) break;
        }
        cursor_.Advance();
      }
      if (cursor_.AtEnd()) return cursor_.Error("unterminated DOCTYPE subset");
      subset.assign(cursor_.Slice(begin, cursor_.pos()));
      cursor_.Advance();  // ']'
    }
    cursor_.SkipWhitespace();
    if (!cursor_.Match('>')) return cursor_.Error("expected '>' after DOCTYPE");
    return handler_->Doctype(name, subset);
  }

  Status SkipQuotedLiteral() {
    if (cursor_.AtEnd()) return cursor_.Error("expected quoted literal");
    char quote = cursor_.Peek();
    if (quote != '"' && quote != '\'') {
      return cursor_.Error("expected quoted literal");
    }
    cursor_.Advance();
    while (!cursor_.AtEnd() && cursor_.Peek() != quote) cursor_.Advance();
    if (cursor_.AtEnd()) return cursor_.Error("unterminated literal");
    cursor_.Advance();
    return Status::OK();
  }

  Status SkipComment() {
    if (!cursor_.MatchLiteral("<!--")) return cursor_.Error("expected <!--");
    while (!cursor_.AtEnd()) {
      if (cursor_.StartsWith("-->")) {
        cursor_.MatchLiteral("-->");
        return Status::OK();
      }
      if (cursor_.StartsWith("--")) {
        // XML forbids "--" inside comments (checked after the "-->" case).
        return cursor_.Error("'--' not allowed inside comment");
      }
      cursor_.Advance();
    }
    return cursor_.Error("unterminated comment");
  }

  Status SkipPi() {
    if (!cursor_.MatchLiteral("<?")) return cursor_.Error("expected <?");
    while (!cursor_.AtEnd()) {
      if (cursor_.MatchLiteral("?>")) return Status::OK();
      cursor_.Advance();
    }
    return cursor_.Error("unterminated processing instruction");
  }

  // Trailing misc after the root element.
  Status SkipMisc() {
    while (true) {
      cursor_.SkipWhitespace();
      if (cursor_.StartsWith("<!--")) {
        RETURN_IF_ERROR(SkipComment());
      } else if (cursor_.StartsWith("<?")) {
        RETURN_IF_ERROR(SkipPi());
      } else {
        return Status::OK();
      }
    }
  }

  Result<std::string> ParseName() {
    if (cursor_.AtEnd() || !IsNameStartChar(cursor_.Peek())) {
      return cursor_.Error("expected XML name");
    }
    size_t begin = cursor_.pos();
    cursor_.Advance();
    while (!cursor_.AtEnd() && IsNameChar(cursor_.Peek())) cursor_.Advance();
    return std::string(cursor_.Slice(begin, cursor_.pos()));
  }

  // Decodes &amp; &lt; &gt; &quot; &apos; and &#...; / &#x...; references.
  Status AppendReference(std::string* out) {
    // Cursor sits after '&'.
    if (cursor_.Match('#')) {
      bool hex = cursor_.Match('x');
      uint32_t code = 0;
      bool any = false;
      while (!cursor_.AtEnd() && cursor_.Peek() != ';') {
        char c = cursor_.Advance();
        uint32_t digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (hex && c >= 'a' && c <= 'f') {
          digit = 10 + (c - 'a');
        } else if (hex && c >= 'A' && c <= 'F') {
          digit = 10 + (c - 'A');
        } else {
          return cursor_.Error("invalid character reference");
        }
        code = code * (hex ? 16 : 10) + digit;
        if (code > 0x10FFFF) {
          return cursor_.Error("character reference out of range");
        }
        any = true;
      }
      if (!any || !cursor_.Match(';')) {
        return cursor_.Error("unterminated character reference");
      }
      AppendUtf8(code, out);
      return Status::OK();
    }
    ASSIGN_OR_RETURN(std::string name, ParseName());
    if (!cursor_.Match(';')) {
      return cursor_.Error("unterminated entity reference");
    }
    if (name == "amp") {
      *out += '&';
    } else if (name == "lt") {
      *out += '<';
    } else if (name == "gt") {
      *out += '>';
    } else if (name == "quot") {
      *out += '"';
    } else if (name == "apos") {
      *out += '\'';
    } else {
      return Status::Unsupported("general entity '&" + name +
                                 ";' is not supported");
    }
    return Status::OK();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<std::string> ParseAttributeValue() {
    char quote = cursor_.AtEnd() ? '\0' : cursor_.Peek();
    if (quote != '"' && quote != '\'') {
      return cursor_.Error("expected quoted attribute value");
    }
    cursor_.Advance();
    std::string value;
    while (!cursor_.AtEnd() && cursor_.Peek() != quote) {
      char c = cursor_.Peek();
      if (c == '<') return cursor_.Error("'<' not allowed in attribute value");
      if (c == '&') {
        cursor_.Advance();
        RETURN_IF_ERROR(AppendReference(&value));
      } else {
        value += cursor_.Advance();
      }
    }
    if (!cursor_.Match(quote)) {
      return cursor_.Error("unterminated attribute value");
    }
    return value;
  }

  Status FlushText() {
    if (pending_text_.empty()) return Status::OK();
    std::string text;
    text.swap(pending_text_);
    if (options_.skip_whitespace_text && TrimWhitespace(text).empty()) {
      return Status::OK();
    }
    if (open_tags_.empty()) {
      return cursor_.Error("text outside root element");
    }
    return handler_->Characters(text);
  }

  // Parses the root element's whole content, emitting events. Iterative:
  // the open-tag stack lives on the heap, so depth is unbounded.
  Status ParseContent() {
    while (true) {
      if (cursor_.AtEnd()) {
        return cursor_.Error(
            open_tags_.empty()
                ? "expected element"
                : "unexpected end of input inside '" + open_tags_.back() +
                      "'");
      }
      if (cursor_.Peek() == '<') {
        if (cursor_.StartsWith("<!--")) {
          RETURN_IF_ERROR(SkipComment());
          continue;
        }
        if (cursor_.StartsWith("<![CDATA[")) {
          cursor_.MatchLiteral("<![CDATA[");
          size_t begin = cursor_.pos();
          while (!cursor_.AtEnd() && !cursor_.StartsWith("]]>")) {
            cursor_.Advance();
          }
          if (cursor_.AtEnd()) return cursor_.Error("unterminated CDATA");
          std::string_view data = cursor_.Slice(begin, cursor_.pos());
          cursor_.MatchLiteral("]]>");
          if (open_tags_.empty()) {
            return cursor_.Error("CDATA outside root element");
          }
          if (options_.coalesce_text) {
            pending_text_.append(data);
          } else {
            RETURN_IF_ERROR(FlushText());
            RETURN_IF_ERROR(handler_->Characters(data));
          }
          continue;
        }
        if (cursor_.StartsWith("<?")) {
          RETURN_IF_ERROR(SkipPi());
          continue;
        }
        if (cursor_.StartsWith("</")) {
          RETURN_IF_ERROR(FlushText());
          cursor_.MatchLiteral("</");
          ASSIGN_OR_RETURN(std::string tag, ParseName());
          cursor_.SkipWhitespace();
          if (!cursor_.Match('>')) return cursor_.Error("expected '>'");
          if (open_tags_.empty()) {
            return cursor_.Error("unmatched closing tag");
          }
          if (open_tags_.back() != tag) {
            return cursor_.Error("mismatched closing tag '</" + tag +
                                 ">'; open element is '" + open_tags_.back() +
                                 "'");
          }
          RETURN_IF_ERROR(handler_->EndElement(tag));
          open_tags_.pop_back();
          if (open_tags_.empty()) return Status::OK();
          continue;
        }
        // Start tag.
        RETURN_IF_ERROR(FlushText());
        cursor_.Advance();  // '<'
        ASSIGN_OR_RETURN(std::string tag, ParseName());
        attr_storage_.clear();
        bool self_closing = false;
        while (true) {
          cursor_.SkipWhitespace();
          if (cursor_.AtEnd()) return cursor_.Error("unterminated start tag");
          if (cursor_.Match('>')) break;
          if (cursor_.MatchLiteral("/>")) {
            self_closing = true;
            break;
          }
          ASSIGN_OR_RETURN(std::string attr_name, ParseName());
          cursor_.SkipWhitespace();
          if (!cursor_.Match('=')) {
            return cursor_.Error("expected '=' after attribute name");
          }
          cursor_.SkipWhitespace();
          ASSIGN_OR_RETURN(std::string attr_value, ParseAttributeValue());
          for (const auto& [existing, unused] : attr_storage_) {
            if (existing == attr_name) {
              return cursor_.Error("duplicate attribute '" + attr_name + "'");
            }
          }
          attr_storage_.emplace_back(std::move(attr_name),
                                     std::move(attr_value));
        }
        attr_views_.clear();
        for (const auto& [name, value] : attr_storage_) {
          attr_views_.push_back(SaxAttribute{name, value});
        }
        RETURN_IF_ERROR(handler_->StartElement(tag, attr_views_));
        if (self_closing) {
          RETURN_IF_ERROR(handler_->EndElement(tag));
          if (open_tags_.empty()) return Status::OK();
        } else {
          open_tags_.push_back(std::move(tag));
        }
        continue;
      }
      // Character data.
      char c = cursor_.Peek();
      if (c == '&') {
        cursor_.Advance();
        RETURN_IF_ERROR(AppendReference(&pending_text_));
        continue;
      }
      if (open_tags_.empty() && !IsXmlWhitespace(c)) {
        return cursor_.Error("text outside root element");
      }
      pending_text_ += cursor_.Advance();
    }
  }

  Cursor cursor_;
  ParseOptions options_;
  SaxHandler* handler_;
  std::vector<std::string> open_tags_;
  std::string pending_text_;
  std::vector<std::pair<std::string, std::string>> attr_storage_;
  std::vector<SaxAttribute> attr_views_;
};

// SAX handler that materializes the DOM.
class DomBuilder : public SaxHandler {
 public:
  explicit DomBuilder(std::shared_ptr<automata::Alphabet> intern_alphabet) {
    if (intern_alphabet != nullptr) {
      // Empty document: binding is O(1) and makes CreateElement intern.
      (void)doc_.BindInterning(std::move(intern_alphabet));
    }
  }

  Status Doctype(std::string_view name, std::string_view subset) override {
    doctype_name_.assign(name);
    internal_subset_.assign(subset);
    return Status::OK();
  }

  Status StartElement(std::string_view name,
                      const std::vector<SaxAttribute>& attributes) override {
    NodeId node = doc_.CreateElement(name);
    for (const SaxAttribute& attr : attributes) {
      RETURN_IF_ERROR(doc_.AddAttribute(node, attr.name, attr.value));
    }
    if (stack_.empty()) {
      RETURN_IF_ERROR(doc_.SetRoot(node));
    } else {
      RETURN_IF_ERROR(doc_.AppendChild(stack_.back(), node));
    }
    stack_.push_back(node);
    return Status::OK();
  }

  Status EndElement(std::string_view) override {
    stack_.pop_back();
    return Status::OK();
  }

  Status Characters(std::string_view text) override {
    NodeId node = doc_.CreateText(text);
    return doc_.AppendChild(stack_.back(), node);
  }

  ParsedWithDoctype Take() {
    return ParsedWithDoctype{std::move(doc_), std::move(doctype_name_),
                             std::move(internal_subset_)};
  }

 private:
  Document doc_;
  std::vector<NodeId> stack_;
  std::string doctype_name_;
  std::string internal_subset_;
};

}  // namespace

Status ParseXmlEvents(std::string_view input, SaxHandler* handler,
                      const ParseOptions& options) {
  XMLREVAL_CHECK(handler != nullptr, "ParseXmlEvents requires a handler");
  return EventParser(input, options, handler).Parse();
}

Result<Document> ParseXml(std::string_view input, const ParseOptions& options) {
  DomBuilder builder(options.intern_alphabet);
  RETURN_IF_ERROR(ParseXmlEvents(input, &builder, options));
  return std::move(builder.Take().document);
}

Result<ParsedWithDoctype> ParseXmlWithDoctype(std::string_view input,
                                              const ParseOptions& options) {
  DomBuilder builder(options.intern_alphabet);
  RETURN_IF_ERROR(ParseXmlEvents(input, &builder, options));
  return builder.Take();
}

}  // namespace xmlreval::xml
