// Trie over Dewey paths, implementing the paper's `modified()` predicate
// (Section 3.3): after inserting the Dewey numbers of all updated nodes,
// ContainsPrefixedBy(p) answers "was any node in the subtree rooted at p
// modified?" in O(depth(p)). The trie can be navigated in lockstep with a
// tree traversal (TrieCursor) so the validator pays O(1) per step instead of
// O(depth) per query.

#ifndef XMLREVAL_XML_PATH_TRIE_H_
#define XMLREVAL_XML_PATH_TRIE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "xml/dewey.h"

namespace xmlreval::xml {

class PathTrie {
 public:
  PathTrie() : root_(std::make_unique<TrieNode>()) {}

  /// Marks `path` (and so, implicitly, all its ancestors as "containing a
  /// modification").
  void Insert(const DeweyPath& path);

  /// True iff some inserted path has `path` as a prefix — i.e. the subtree
  /// at `path` contains a modified node.
  bool ContainsPrefixedBy(const DeweyPath& path) const;

  /// True iff exactly `path` was inserted.
  bool ContainsExactly(const DeweyPath& path) const;

  bool empty() const { return root_->children.empty() && !root_->terminal; }
  size_t size() const { return size_; }
  void Clear();

 private:
  friend class TrieCursor;

  struct TrieNode {
    std::unordered_map<uint32_t, std::unique_ptr<TrieNode>> children;
    bool terminal = false;  // a path ends exactly here
  };

  std::unique_ptr<TrieNode> root_;
  size_t size_ = 0;
};

/// Position in a PathTrie maintained alongside a tree traversal. Descend()
/// returns a cursor for a child step; a cursor that is Null() means no
/// inserted path passes through this subtree, so `modified()` is false for
/// every node underneath — the traversal can take the fast path.
class TrieCursor {
 public:
  /// Cursor at the trie root.
  explicit TrieCursor(const PathTrie& trie) : node_(trie.root_.get()) {}

  /// The null cursor (no modification anywhere below).
  TrieCursor() : node_(nullptr) {}

  bool Null() const { return node_ == nullptr; }

  /// True iff modifications exist in the current subtree.
  bool SubtreeModified() const { return node_ != nullptr; }

  /// True iff the current node itself was inserted.
  bool ExactlyHere() const { return node_ != nullptr && node_->terminal; }

  /// Moves to child `ordinal`; returns the null cursor when no inserted
  /// path continues that way.
  TrieCursor Descend(uint32_t ordinal) const {
    if (node_ == nullptr) return TrieCursor();
    auto it = node_->children.find(ordinal);
    if (it == node_->children.end()) return TrieCursor();
    return TrieCursor(it->second.get());
  }

 private:
  explicit TrieCursor(const PathTrie::TrieNode* node) : node_(node) {}
  const PathTrie::TrieNode* node_;
};

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_PATH_TRIE_H_
