// Raw-byte subtree skipper — the paper's R_sub subsumption, realized at
// the byte level.
//
// When a streaming cast enters a (source-type, target-type) pair with
// s ⊑ t (Definition 4), every document fragment valid under s is valid
// under t, so the subtree's CONTENT cannot affect the verdict. The only
// remaining obligations are structural: find the matching end tag without
// being fooled by markup that hides '<' and '>' (comments, CDATA, PIs,
// quoted attribute values). SkipScanner does exactly that — no symbol
// interning, no DFA steps, no attribute or text processing, no entity
// decoding. Content bytes are located with a SIMD '<' scan
// (SSE2 / NEON / scalar, the dispatch pattern from IsAllXmlWhitespace).
//
// The scanner is resumable: Scan() consumes as much of the given chunk as
// it can and returns kNeedMore when the subtree extends past it, carrying
// ZERO buffered bytes — all cross-chunk state is the (state, depth,
// literal-prefix-position) triple, so skipping is O(1) memory regardless
// of subtree or chunk size.
//
// Scope: the scanner checks the structural well-formedness a skip must
// not silently forgive (tag nesting balance, comment '--' rule, quote
// termination, '<' in attribute values) but does NOT re-verify tag-name
// matching, duplicate attributes, or entity references inside the skipped
// region — the cast precondition says the document was already parsed
// valid under the source schema at ingestion, and those checks are
// byte-local anyway (truncation, the realistic mid-stream failure, is
// always caught as kNeedMore at end of input).

#ifndef XMLREVAL_XML_SKIP_SCANNER_H_
#define XMLREVAL_XML_SKIP_SCANNER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace xmlreval::xml {

/// Finds the first occurrence of `byte` in [p, p+n) with the SSE2 / NEON /
/// scalar dispatch used across the hot paths; nullptr when absent.
/// Exposed for the parser's text scan and for tests.
const char* FindByteSimd(const char* p, size_t n, char byte);

class SkipScanner {
 public:
  enum class Result : uint8_t {
    kNeedMore,  // chunk exhausted, subtree still open — feed more bytes
    kDone,      // matching end tag consumed; `consumed` stops just past '>'
    kError,     // structurally malformed markup; see error()
  };

  /// Arms the scanner immediately after the '>' of a (non-self-closing)
  /// start tag: depth 1, content state. Reusable — Begin() resets fully.
  void Begin();

  /// Consumes bytes from `data` until the subtree closes, the chunk ends,
  /// or an error is found. `*consumed` is always set to the number of
  /// bytes eaten from this chunk (on kDone, the terminating '>' is the
  /// last byte consumed; the rest of the chunk is the caller's).
  Result Scan(std::string_view data, size_t* consumed);

  /// Open-element depth still pending (1 = only the skipped element).
  uint64_t depth() const { return depth_; }

  const std::string& error() const { return error_; }

 private:
  enum class State : uint8_t {
    kContent,             // between markup: SIMD-scan for '<'
    kLt,                  // just saw '<'
    kBang,                // "<!"
    kBangDash,            // "<!-"
    kCDataPrefix,         // matching "<![CDATA[" byte by byte
    kComment,             // inside "<!--": scan for '-'
    kCommentDash,         // comment, saw '-'
    kCommentDashDash,     // comment, saw "--": only '>' is legal
    kCData,               // inside CDATA: scan for ']'
    kCDataBracket,        // CDATA, saw ']'
    kCDataBracketBracket, // CDATA, saw "]]" (']' keeps the window sliding)
    kPi,                  // inside "<?": scan for '?'
    kPiQ,                 // PI, saw '?'
    kStartTag,            // inside a start tag, outside quotes
    kStartTagQuote,       // inside a quoted attribute value
    kStartTagSlash,       // start tag, saw '/': next must be '>'
    kEndTagName,          // "</": next must start a name
    kEndTag,              // end tag: scan for '>'
  };

  Result Fail(std::string message);

  State state_ = State::kContent;
  uint64_t depth_ = 0;
  uint8_t prefix_pos_ = 0;  // next index to match in "<![CDATA["
  char quote_ = 0;          // active quote char in kStartTagQuote
  std::string error_;
};

}  // namespace xmlreval::xml

#endif  // XMLREVAL_XML_SKIP_SCANNER_H_
