#include "xml/push_parser.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "common/string_util.h"

namespace xmlreval::xml {
namespace {

constexpr std::string_view kCDataOpen = "<![CDATA[";
constexpr std::string_view kDoctypeOpen = "<!DOCTYPE";
// A numeric character reference longer than this is out of range before
// it terminates; an entity name longer than this is never one we decode.
constexpr size_t kMaxNumericRef = 16;   // "&#x" + digits
constexpr size_t kMaxEntityName = 256;  // "&" + name

void AppendUtf8(uint32_t code, std::string* out) {
  if (code < 0x80) {
    *out += static_cast<char>(code);
  } else if (code < 0x800) {
    *out += static_cast<char>(0xC0 | (code >> 6));
    *out += static_cast<char>(0x80 | (code & 0x3F));
  } else if (code < 0x10000) {
    *out += static_cast<char>(0xE0 | (code >> 12));
    *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (code & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (code >> 18));
    *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (code & 0x3F));
  }
}

}  // namespace

PushParser::PushParser(SaxHandler* handler, const ParseOptions& options)
    : handler_(handler), options_(options) {
  XMLREVAL_CHECK(handler != nullptr, "PushParser requires a handler");
}

uint64_t PushParser::Offset() const {
  return end_offset_ - static_cast<uint64_t>(end_ - p_);
}

Status PushParser::ErrorAt(uint64_t offset, std::string_view message) {
  return Status::ParseError(StrCat("XML parse error at byte ",
                                   std::to_string(offset), ": ", message));
}

void PushParser::CarryByte(char c) {
  carry_ += c;
  peak_carry_ = std::max<uint64_t>(peak_carry_, carry_.size());
}

void PushParser::CarryStart(char c) {
  carry_offset_ = Offset();
  carry_.clear();
  CarryByte(c);
}

void PushParser::SkipCurrentSubtree() {
  XMLREVAL_CHECK(in_start_element_,
                 "SkipCurrentSubtree is only callable from StartElement");
  skip_requested_ = true;
}

Status PushParser::Feed(std::string_view chunk) {
  if (failed_) return final_status_;
  if (finished_) {
    return Status::InvalidArgument("PushParser::Feed after Finish");
  }
  bytes_fed_ += chunk.size();
  p_ = chunk.data();
  end_ = chunk.data() + chunk.size();
  end_offset_ = bytes_fed_;
  Status status = Run();
  p_ = end_ = nullptr;
  if (!status.ok()) {
    failed_ = true;
    final_status_ = status;
  }
  return status;
}

Status PushParser::Run() {
  while (p_ < end_) {
    if (mode_ == Mode::kSkip) {
      RETURN_IF_ERROR(RunSkip());
      continue;
    }
    switch (sub_) {
      case Sub::kText:
        RETURN_IF_ERROR(mode_ == Mode::kContent ? RunContentText()
                                                : RunMiscText());
        break;
      case Sub::kMarkupLt:
        RETURN_IF_ERROR(RunMarkupLt());
        break;
      case Sub::kMarkupBang:
        RETURN_IF_ERROR(RunMarkupBang());
        break;
      case Sub::kStartTagAcc:
        RETURN_IF_ERROR(RunStartTagAcc());
        break;
      case Sub::kEndTagAcc:
        RETURN_IF_ERROR(RunEndTagAcc());
        break;
      case Sub::kDoctypeAcc:
        RETURN_IF_ERROR(RunDoctypeAcc());
        break;
      case Sub::kCharRef:
        RETURN_IF_ERROR(RunCharRef());
        break;
      case Sub::kComment:
      case Sub::kCommentDash:
      case Sub::kCommentDashDash:
        RETURN_IF_ERROR(RunComment());
        break;
      case Sub::kCData:
      case Sub::kCDataBracket:
      case Sub::kCDataBracketBracket:
        RETURN_IF_ERROR(RunCData());
        break;
      case Sub::kPi:
      case Sub::kPiQ:
        RETURN_IF_ERROR(RunPi());
        break;
    }
  }
  return Status::OK();
}

Status PushParser::RunSkip() {
  size_t consumed = 0;
  SkipScanner::Result result =
      skipper_.Scan(std::string_view(p_, static_cast<size_t>(end_ - p_)),
                    &consumed);
  bytes_skipped_ += consumed;
  p_ += consumed;
  switch (result) {
    case SkipScanner::Result::kNeedMore:
      return Status::OK();
    case SkipScanner::Result::kDone:
      mode_ = skip_is_root_ ? Mode::kEpilog : Mode::kContent;
      sub_ = Sub::kText;
      return Status::OK();
    case SkipScanner::Result::kError:
      return Error(skipper_.error());
  }
  return Status::OK();
}

// Character data inside the root element. The invariant that makes this
// simple: in kContent/kText the open-tag stack is never empty (the root's
// start tag switches the mode, and popping the root switches to kEpilog).
Status PushParser::RunContentText() {
  const size_t n = static_cast<size_t>(end_ - p_);
  const char* stop = FindByteSimd(p_, n, '<');
  size_t span = stop == nullptr ? n : static_cast<size_t>(stop - p_);
  const char* amp = FindByteSimd(p_, span, '&');
  if (amp != nullptr) {
    stop = amp;
    span = static_cast<size_t>(amp - p_);
  }
  pending_text_.append(p_, span);
  p_ += span;
  if (stop == nullptr) {
    return Status::OK();
  }
  if (*p_ == '<') {
    CarryStart('<');
    ++p_;
    sub_ = Sub::kMarkupLt;
  } else {
    CarryStart('&');
    ++p_;
    sub_ = Sub::kCharRef;
  }
  return Status::OK();
}

// Whitespace / markup boundary in the prolog and the epilog.
Status PushParser::RunMiscText() {
  while (p_ < end_) {
    char c = *p_;
    if (IsXmlWhitespace(c)) {
      ++p_;
      continue;
    }
    if (c == '<') {
      CarryStart('<');
      ++p_;
      sub_ = Sub::kMarkupLt;
      return Status::OK();
    }
    return Error(mode_ == Mode::kProlog ? "expected root element"
                                        : "content after document element");
  }
  return Status::OK();
}

Status PushParser::RunMarkupLt() {
  char c = *p_;
  if (c == '?') {
    ++p_;
    carry_.clear();
    sub_ = Sub::kPi;
    return Status::OK();
  }
  if (c == '!') {
    CarryByte(c);
    ++p_;
    sub_ = Sub::kMarkupBang;
    return Status::OK();
  }
  if (mode_ == Mode::kEpilog) {
    return ErrorAt(carry_offset_, "content after document element");
  }
  if (c == '/') {
    CarryByte(c);
    ++p_;
    sub_ = Sub::kEndTagAcc;
    return Status::OK();
  }
  if (IsNameStartChar(c)) {
    if (mode_ == Mode::kProlog) mode_ = Mode::kContent;  // the root arrives
    CarryByte(c);
    ++p_;
    tag_quote_ = 0;
    sub_ = Sub::kStartTagAcc;
    return Status::OK();
  }
  return ErrorAt(carry_offset_ + 1, "expected XML name");
}

Status PushParser::RunMarkupBang() {
  while (p_ < end_) {
    char c = *p_;
    Status bad = mode_ == Mode::kEpilog
                     ? ErrorAt(carry_offset_, "content after document element")
                     : ErrorAt(carry_offset_ + 1, "expected XML name");
    if (carry_.size() == 2) {  // "<!"
      if (c == '-') {
        CarryByte(c);
        ++p_;
        continue;
      }
      if (c == '[' && mode_ != Mode::kEpilog) {
        CarryByte(c);
        ++p_;
        continue;
      }
      if (c == 'D' && mode_ == Mode::kProlog) {
        CarryByte(c);
        ++p_;
        continue;
      }
      return bad;
    }
    if (carry_[2] == '-') {  // "<!-"
      if (c != '-') return bad;
      ++p_;
      carry_.clear();
      sub_ = Sub::kComment;
      return Status::OK();
    }
    if (carry_[2] == '[') {  // matching "<![CDATA["
      if (c != kCDataOpen[carry_.size()]) return bad;
      CarryByte(c);
      ++p_;
      if (carry_.size() == kCDataOpen.size()) {
        if (mode_ != Mode::kContent) {
          return ErrorAt(carry_offset_, "CDATA outside root element");
        }
        carry_.clear();
        sub_ = Sub::kCData;
        return Status::OK();
      }
      continue;
    }
    // Matching "<!DOCTYPE" (prolog only; 'D' is rejected above elsewhere).
    if (c != kDoctypeOpen[carry_.size()]) return bad;
    CarryByte(c);
    ++p_;
    if (carry_.size() == kDoctypeOpen.size()) {
      doctype_quote_ = 0;
      doctype_depth_ = 0;
      sub_ = Sub::kDoctypeAcc;
      return Status::OK();
    }
  }
  return Status::OK();
}

Status PushParser::RunStartTagAcc() {
  while (p_ < end_) {
    char c = *p_;
    if (tag_quote_ != 0) {
      if (c == '<') return Error("'<' not allowed in attribute value");
      if (c == tag_quote_) tag_quote_ = 0;
      CarryByte(c);
      ++p_;
      continue;
    }
    if (c == '>') {
      CarryByte(c);
      ++p_;
      return HandleStartTag();
    }
    if (c == '<') return Error("expected XML name");
    if (c == '"' || c == '\'') tag_quote_ = c;
    CarryByte(c);
    ++p_;
  }
  return Status::OK();
}

Status PushParser::RunEndTagAcc() {
  while (p_ < end_) {
    char c = *p_;
    CarryByte(c);
    ++p_;
    if (c == '>') return HandleEndTag();
  }
  return Status::OK();
}

Status PushParser::RunDoctypeAcc() {
  while (p_ < end_) {
    char c = *p_;
    CarryByte(c);
    ++p_;
    if (doctype_quote_ != 0) {
      if (c == doctype_quote_) doctype_quote_ = 0;
    } else if (doctype_depth_ > 0) {
      // Mirrors EventParser: the internal subset is scanned for bracket
      // nesting only; quotes are not special inside it.
      if (c == '[') ++doctype_depth_;
      else if (c == ']') --doctype_depth_;
    } else if (c == '[') {
      doctype_depth_ = 1;
    } else if (c == '"' || c == '\'') {
      doctype_quote_ = c;
    } else if (c == '>') {
      return HandleDoctype();
    }
  }
  return Status::OK();
}

Status PushParser::RunCharRef() {
  while (p_ < end_) {
    char c = *p_;
    if (c == ';') {
      ++p_;
      return HandleCharRef();
    }
    if (carry_.size() == 1) {  // just "&"
      if (c != '#' && !IsNameStartChar(c)) {
        return Error("expected XML name");
      }
    } else if (carry_[1] == '#') {
      bool hex_marker = carry_.size() == 2 && c == 'x';
      bool hex = carry_.size() > 2 && carry_[2] == 'x';
      bool digit = (c >= '0' && c <= '9') ||
                   (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')));
      if (!hex_marker && !digit) {
        return Error("invalid character reference");
      }
      if (carry_.size() >= kMaxNumericRef) {
        return Error("character reference out of range");
      }
    } else {
      if (!IsNameChar(c)) return Error("unterminated entity reference");
      if (carry_.size() >= kMaxEntityName) {
        return Error("unterminated entity reference");
      }
    }
    CarryByte(c);
    ++p_;
  }
  return Status::OK();
}

Status PushParser::HandleCharRef() {
  // carry_ is "&" + body, ';' not included. Bodies were validated
  // char-by-char in RunCharRef, so only completeness checks remain.
  std::string_view body(carry_);
  body.remove_prefix(1);
  if (body.empty()) return Error("expected XML name");
  if (body[0] == '#') {
    bool hex = body.size() > 1 && body[1] == 'x';
    std::string_view digits = body.substr(hex ? 2 : 1);
    if (digits.empty()) return Error("unterminated character reference");
    uint32_t code = 0;
    for (char c : digits) {
      uint32_t digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
      else digit = 10 + (c - 'A');
      code = code * (hex ? 16 : 10) + digit;
      if (code > 0x10FFFF) {
        return Error("character reference out of range");
      }
    }
    AppendUtf8(code, &pending_text_);
  } else if (body == "amp") {
    pending_text_ += '&';
  } else if (body == "lt") {
    pending_text_ += '<';
  } else if (body == "gt") {
    pending_text_ += '>';
  } else if (body == "quot") {
    pending_text_ += '"';
  } else if (body == "apos") {
    pending_text_ += '\'';
  } else {
    return Status::Unsupported(StrCat("general entity '&", body,
                                      ";' is not supported"));
  }
  carry_.clear();
  sub_ = Sub::kText;
  return Status::OK();
}

Status PushParser::RunComment() {
  while (p_ < end_) {
    if (sub_ == Sub::kComment) {
      const char* dash = FindByteSimd(p_, static_cast<size_t>(end_ - p_), '-');
      if (dash == nullptr) {
        p_ = end_;
        return Status::OK();
      }
      p_ = dash + 1;
      sub_ = Sub::kCommentDash;
    } else if (sub_ == Sub::kCommentDash) {
      sub_ = (*p_++ == '-') ? Sub::kCommentDashDash : Sub::kComment;
    } else {  // kCommentDashDash
      if (*p_++ != '>') return Error("'--' not allowed inside comment");
      sub_ = Sub::kText;
      return Status::OK();
    }
  }
  return Status::OK();
}

Status PushParser::RunCData() {
  while (p_ < end_) {
    if (sub_ == Sub::kCData) {
      const char* br = FindByteSimd(p_, static_cast<size_t>(end_ - p_), ']');
      size_t span = br == nullptr ? static_cast<size_t>(end_ - p_)
                                  : static_cast<size_t>(br - p_);
      pending_text_.append(p_, span);
      p_ += span;
      if (br == nullptr) return Status::OK();
      ++p_;  // the ']'
      sub_ = Sub::kCDataBracket;
    } else if (sub_ == Sub::kCDataBracket) {
      char c = *p_++;
      if (c == ']') {
        sub_ = Sub::kCDataBracketBracket;
      } else {
        pending_text_ += ']';
        pending_text_ += c;
        sub_ = Sub::kCData;
      }
    } else {  // kCDataBracketBracket
      char c = *p_++;
      if (c == '>') {
        sub_ = Sub::kText;
        return Status::OK();
      }
      if (c == ']') {
        // "]]]" — emit one ']' and keep the two-bracket window open.
        pending_text_ += ']';
      } else {
        pending_text_ += "]]";
        pending_text_ += c;
        sub_ = Sub::kCData;
      }
    }
  }
  return Status::OK();
}

Status PushParser::RunPi() {
  while (p_ < end_) {
    if (sub_ == Sub::kPi) {
      const char* q = FindByteSimd(p_, static_cast<size_t>(end_ - p_), '?');
      if (q == nullptr) {
        p_ = end_;
        return Status::OK();
      }
      p_ = q + 1;
      sub_ = Sub::kPiQ;
    } else {  // kPiQ
      char c = *p_++;
      if (c == '>') {
        sub_ = Sub::kText;
        return Status::OK();
      }
      if (c != '?') sub_ = Sub::kPi;
    }
  }
  return Status::OK();
}

Status PushParser::AppendReferenceAt(std::string_view text, size_t* pos,
                                     std::string* out,
                                     uint64_t text_offset) {
  size_t i = *pos;
  auto err = [&](std::string_view msg) {
    *pos = i;
    return ErrorAt(text_offset + i, msg);
  };
  if (i < text.size() && text[i] == '#') {
    ++i;
    bool hex = i < text.size() && text[i] == 'x';
    if (hex) ++i;
    uint32_t code = 0;
    bool any = false;
    while (i < text.size() && text[i] != ';') {
      char c = text[i];
      uint32_t digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (hex && c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
      else if (hex && c >= 'A' && c <= 'F') digit = 10 + (c - 'A');
      else return err("invalid character reference");
      ++i;
      code = code * (hex ? 16 : 10) + digit;
      if (code > 0x10FFFF) return err("character reference out of range");
      any = true;
    }
    if (!any || i >= text.size()) {
      return err("unterminated character reference");
    }
    ++i;  // ';'
    AppendUtf8(code, out);
    *pos = i;
    return Status::OK();
  }
  if (i >= text.size() || !IsNameStartChar(text[i])) {
    return err("expected XML name");
  }
  size_t name_begin = i;
  while (i < text.size() && IsNameChar(text[i])) ++i;
  std::string_view name = text.substr(name_begin, i - name_begin);
  if (i >= text.size() || text[i] != ';') {
    return err("unterminated entity reference");
  }
  ++i;
  if (name == "amp") *out += '&';
  else if (name == "lt") *out += '<';
  else if (name == "gt") *out += '>';
  else if (name == "quot") *out += '"';
  else if (name == "apos") *out += '\'';
  else {
    return Status::Unsupported(StrCat("general entity '&", name,
                                      ";' is not supported"));
  }
  *pos = i;
  return Status::OK();
}

Status PushParser::HandleStartTag() {
  // carry_ holds the whole tag, '<' through '>' inclusive, quotes balanced.
  const std::string_view tag(carry_);
  size_t i = 1;
  auto err = [&](std::string_view msg) {
    return ErrorAt(carry_offset_ + i, msg);
  };
  size_t name_begin = i;
  while (i < tag.size() && IsNameChar(tag[i])) ++i;
  std::string_view name = tag.substr(name_begin, i - name_begin);

  attr_storage_.clear();
  bool self_closing = false;
  while (true) {
    while (i < tag.size() && IsXmlWhitespace(tag[i])) ++i;
    if (i >= tag.size()) return err("unterminated start tag");
    if (tag[i] == '>') break;
    if (tag[i] == '/') {
      if (i + 1 >= tag.size() || tag[i + 1] != '>') {
        ++i;
        return err("expected XML name");
      }
      self_closing = true;
      i += 2;
      break;
    }
    if (!IsNameStartChar(tag[i])) return err("expected XML name");
    size_t attr_begin = i;
    while (i < tag.size() && IsNameChar(tag[i])) ++i;
    std::string attr_name(tag.substr(attr_begin, i - attr_begin));
    while (i < tag.size() && IsXmlWhitespace(tag[i])) ++i;
    if (i >= tag.size() || tag[i] != '=') {
      return err("expected '=' after attribute name");
    }
    ++i;
    while (i < tag.size() && IsXmlWhitespace(tag[i])) ++i;
    if (i >= tag.size() || (tag[i] != '"' && tag[i] != '\'')) {
      return err("expected quoted attribute value");
    }
    char quote = tag[i++];
    std::string value;
    while (i < tag.size() && tag[i] != quote) {
      char c = tag[i];
      if (c == '<') return err("'<' not allowed in attribute value");
      if (c == '&') {
        ++i;
        RETURN_IF_ERROR(AppendReferenceAt(tag, &i, &value, carry_offset_));
      } else {
        value += c;
        ++i;
      }
    }
    if (i >= tag.size()) return err("unterminated attribute value");
    ++i;  // closing quote
    for (const auto& [existing, unused] : attr_storage_) {
      if (existing == attr_name) {
        return err(StrCat("duplicate attribute '", attr_name, "'"));
      }
    }
    attr_storage_.emplace_back(std::move(attr_name), std::move(value));
  }

  attr_views_.clear();
  for (const auto& [aname, avalue] : attr_storage_) {
    attr_views_.push_back(SaxAttribute{aname, avalue});
  }

  RETURN_IF_ERROR(EmitText());
  in_start_element_ = true;
  skip_requested_ = false;
  Status handled = handler_->StartElement(name, attr_views_);
  in_start_element_ = false;
  RETURN_IF_ERROR(handled);
  const bool skip = skip_requested_;
  skip_requested_ = false;

  if (self_closing) {
    // A skipped self-closing element has no subtree: only its EndElement
    // is suppressed.
    if (!skip) RETURN_IF_ERROR(handler_->EndElement(name));
    if (open_tags_.empty()) mode_ = Mode::kEpilog;  // it was the root
    carry_.clear();
    sub_ = Sub::kText;
    return Status::OK();
  }
  if (skip) {
    skip_is_root_ = open_tags_.empty();
    skipper_.Begin();
    mode_ = Mode::kSkip;
    sub_ = Sub::kText;
    carry_.clear();
    return Status::OK();
  }
  open_tags_.emplace_back(name);
  carry_.clear();
  sub_ = Sub::kText;
  return Status::OK();
}

Status PushParser::HandleEndTag() {
  // carry_ is "</" ... ">", '>' being the final byte.
  const std::string_view tag(carry_);
  size_t i = 2;
  auto err = [&](std::string_view msg) {
    return ErrorAt(carry_offset_ + i, msg);
  };
  if (i >= tag.size() || !IsNameStartChar(tag[i])) {
    return err("expected XML name");
  }
  size_t name_begin = i;
  while (i < tag.size() && IsNameChar(tag[i])) ++i;
  std::string_view name = tag.substr(name_begin, i - name_begin);
  while (i < tag.size() && IsXmlWhitespace(tag[i])) ++i;
  if (i + 1 != tag.size() || tag[i] != '>') return err("expected '>'");

  RETURN_IF_ERROR(EmitText());
  if (open_tags_.empty()) {
    return ErrorAt(carry_offset_, "unmatched closing tag");
  }
  if (open_tags_.back() != name) {
    return ErrorAt(carry_offset_,
                   StrCat("mismatched closing tag '</", name,
                          ">'; open element is '", open_tags_.back(), "'"));
  }
  RETURN_IF_ERROR(handler_->EndElement(name));
  open_tags_.pop_back();
  if (open_tags_.empty()) mode_ = Mode::kEpilog;
  carry_.clear();
  sub_ = Sub::kText;
  return Status::OK();
}

Status PushParser::HandleDoctype() {
  // carry_ is "<!DOCTYPE" ... ">", quotes and brackets balanced.
  const std::string_view text(carry_);
  size_t i = kDoctypeOpen.size();
  auto err = [&](std::string_view msg) {
    return ErrorAt(carry_offset_ + i, msg);
  };
  auto skip_ws = [&] {
    while (i < text.size() && IsXmlWhitespace(text[i])) ++i;
  };
  auto skip_literal = [&]() -> Status {
    if (i >= text.size() || (text[i] != '"' && text[i] != '\'')) {
      return err("expected quoted literal");
    }
    char quote = text[i++];
    while (i < text.size() && text[i] != quote) ++i;
    if (i >= text.size()) return err("unterminated literal");
    ++i;
    return Status::OK();
  };

  skip_ws();
  if (i >= text.size() || !IsNameStartChar(text[i])) {
    return err("expected XML name");
  }
  size_t name_begin = i;
  while (i < text.size() && IsNameChar(text[i])) ++i;
  std::string_view name = text.substr(name_begin, i - name_begin);
  skip_ws();
  if (text.substr(i, 6) == "SYSTEM") {
    i += 6;
    skip_ws();
    RETURN_IF_ERROR(skip_literal());
  } else if (text.substr(i, 6) == "PUBLIC") {
    i += 6;
    skip_ws();
    RETURN_IF_ERROR(skip_literal());
    skip_ws();
    RETURN_IF_ERROR(skip_literal());
  }
  skip_ws();
  std::string_view subset;
  if (i < text.size() && text[i] == '[') {
    size_t begin = ++i;
    int depth = 1;
    while (i < text.size()) {
      if (text[i] == '[') ++depth;
      if (text[i] == ']' && --depth == 0) break;
      ++i;
    }
    if (i >= text.size()) return err("unterminated DOCTYPE subset");
    subset = text.substr(begin, i - begin);
    ++i;  // ']'
  }
  skip_ws();
  if (i + 1 != text.size() || text[i] != '>') {
    return err("expected '>' after DOCTYPE");
  }
  RETURN_IF_ERROR(handler_->Doctype(name, subset));
  carry_.clear();
  sub_ = Sub::kText;
  return Status::OK();
}

Status PushParser::EmitText() {
  if (pending_text_.empty()) return Status::OK();
  std::string text;
  text.swap(pending_text_);
  if (options_.skip_whitespace_text && IsAllXmlWhitespace(text)) {
    return Status::OK();
  }
  return handler_->Characters(text);
}

Status PushParser::Finish() {
  if (failed_ || finished_) return final_status_;
  finished_ = true;
  const uint64_t at = bytes_fed_;
  Status status = Status::OK();
  if (mode_ == Mode::kSkip) {
    status = ErrorAt(at, "unexpected end of input inside skipped subtree");
  } else {
    switch (sub_) {
      case Sub::kText:
        if (mode_ == Mode::kProlog) {
          status = ErrorAt(at, "expected root element");
        } else if (mode_ == Mode::kContent) {
          status = ErrorAt(at, StrCat("unexpected end of input inside '",
                                      open_tags_.back(), "'"));
        }
        // kEpilog: complete document.
        break;
      case Sub::kMarkupLt:
      case Sub::kMarkupBang:
        status = ErrorAt(at, "expected XML name");
        break;
      case Sub::kStartTagAcc:
        status = ErrorAt(at, tag_quote_ != 0 ? "unterminated attribute value"
                                             : "unterminated start tag");
        break;
      case Sub::kEndTagAcc:
        status = ErrorAt(at, carry_.size() <= 2 ? "expected XML name"
                                                : "expected '>'");
        break;
      case Sub::kDoctypeAcc:
        status = ErrorAt(at, doctype_depth_ > 0
                                 ? "unterminated DOCTYPE subset"
                                 : doctype_quote_ != 0
                                       ? "unterminated literal"
                                       : "expected '>' after DOCTYPE");
        break;
      case Sub::kCharRef:
        status = ErrorAt(at, carry_.size() < 2 ? "expected XML name"
                             : carry_[1] == '#'
                                 ? "unterminated character reference"
                                 : "unterminated entity reference");
        break;
      case Sub::kComment:
      case Sub::kCommentDash:
      case Sub::kCommentDashDash:
        status = ErrorAt(at, "unterminated comment");
        break;
      case Sub::kCData:
      case Sub::kCDataBracket:
      case Sub::kCDataBracketBracket:
        status = ErrorAt(at, "unterminated CDATA");
        break;
      case Sub::kPi:
      case Sub::kPiQ:
        status = ErrorAt(at, "unterminated processing instruction");
        break;
    }
  }
  if (!status.ok()) failed_ = true;
  final_status_ = status;
  return final_status_;
}

}  // namespace xmlreval::xml
