// Complete deterministic finite automata over an interned alphabet.
//
// Every Dfa in xmlreval is COMPLETE: δ(q, σ) is defined for all q, σ —
// missing transitions are routed to an explicit sink during construction,
// matching the paper's "without loss of generality" assumption in §4.1.
// Transitions are a flat row-major table (num_states × alphabet_size), so
// stepping is one multiply and one load.
//
// Besides subset construction and Hopcroft minimization, this header hosts
// the state analyses the paper's algorithms need:
//   * dead states (§4.1: unreachable, or no final state reachable),
//   * universal states (L(q) = Σ*, the IA set of Definition 6),
//   * reversal to an NFA (§4.3's reverse-scan optimization).
//
// Storage: the hot tables (transitions, accepting flags) are read through
// raw const pointers. A Dfa normally OWNS its tables in vectors and the
// pointers alias them; FromExternal() builds a BORROWED Dfa whose pointers
// alias caller-managed memory — an mmap'd plan-cache artifact — so a
// warm-started process steps the very bytes on disk with zero copies.
// Borrowed DFAs are immutable; the backing storage must outlive the Dfa
// and every copy made of it.

#ifndef XMLREVAL_AUTOMATA_DFA_H_
#define XMLREVAL_AUTOMATA_DFA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "automata/nfa.h"
#include "automata/regex.h"
#include "common/macros.h"
#include "common/result.h"

namespace xmlreval::automata {

class Dfa {
 public:
  /// Creates a DFA with `num_states` states over `alphabet_size` symbols.
  /// All transitions initially point to state 0; callers must set every row
  /// (construction helpers below always do).
  Dfa(size_t num_states, size_t alphabet_size)
      : alphabet_size_(alphabet_size),
        num_states_(num_states),
        transitions_store_(num_states * alphabet_size, 0),
        accepting_store_(num_states, 0) {
    Rebind();
  }

  /// Borrowed-storage factory (plan cache): the DFA reads `transitions`
  /// (row-major num_states × alphabet_size) and `accepting` (one byte per
  /// state) in place, without copying. The caller keeps the storage alive
  /// and unchanged for the lifetime of the Dfa and all its copies; the
  /// pointers must satisfy the types' natural alignment.
  static Dfa FromExternal(size_t num_states, size_t alphabet_size,
                          StateId start_state, const StateId* transitions,
                          const uint8_t* accepting);

  Dfa(const Dfa& other) { *this = other; }
  Dfa& operator=(const Dfa& other) {
    if (this == &other) return *this;
    alphabet_size_ = other.alphabet_size_;
    num_states_ = other.num_states_;
    start_ = other.start_;
    borrowed_ = other.borrowed_;
    if (borrowed_) {
      // Copies of a borrowed DFA stay borrowed: the external storage
      // outlives them by contract.
      transitions_store_.clear();
      accepting_store_.clear();
      transitions_ = other.transitions_;
      accepting_ = other.accepting_;
    } else {
      transitions_store_ = other.transitions_store_;
      accepting_store_ = other.accepting_store_;
      Rebind();
    }
    return *this;
  }
  // Moving a vector keeps its heap buffer, so the raw views stay valid.
  Dfa(Dfa&&) noexcept = default;
  Dfa& operator=(Dfa&&) noexcept = default;

  size_t num_states() const { return num_states_; }
  size_t alphabet_size() const { return alphabet_size_; }

  /// True when the tables alias caller-managed memory (FromExternal).
  bool borrows_storage() const { return borrowed_; }

  StateId start_state() const { return start_; }
  void set_start_state(StateId s) { start_ = s; }

  bool IsAccepting(StateId s) const { return accepting_[s] != 0; }
  void SetAccepting(StateId s, bool accepting = true) {
    XMLREVAL_CHECK(!borrowed_, "borrowed Dfa is immutable");
    accepting_store_[s] = accepting ? 1 : 0;
  }

  StateId Next(StateId state, Symbol symbol) const {
    return transitions_[state * alphabet_size_ + symbol];
  }
  void SetTransition(StateId state, Symbol symbol, StateId target) {
    XMLREVAL_CHECK(!borrowed_, "borrowed Dfa is immutable");
    transitions_store_[state * alphabet_size_ + symbol] = target;
  }

  /// Raw table views (serialization).
  const StateId* transitions_data() const { return transitions_; }
  const uint8_t* accepting_data() const { return accepting_; }

  /// Runs the DFA on a symbol string from `from` (default: start state).
  StateId Run(std::span<const Symbol> input, StateId from) const {
    StateId q = from;
    for (Symbol s : input) q = Next(q, s);
    return q;
  }
  StateId Run(std::span<const Symbol> input) const {
    return Run(input, start_);
  }

  bool Accepts(std::span<const Symbol> input) const {
    return IsAccepting(Run(input));
  }

  /// True iff ε ∈ L (the start state is accepting).
  bool AcceptsEmpty() const { return IsAccepting(start_); }

  /// L(dfa) == ∅ — no accepting state reachable from the start.
  bool IsEmptyLanguage() const;

  /// L(dfa) == Σ* — no rejecting state reachable from the start.
  bool IsUniversalLanguage() const;

  /// dead[q] = true iff no accepting state is reachable FROM q. (The other
  /// half of the paper's dead-state definition — unreachable from the start
  /// — is irrelevant at runtime and available via ReachableStates.)
  std::vector<bool> CoDeadStates() const;

  /// universal[q] = true iff L(q) = Σ*: every state reachable from q is
  /// accepting. These are the IA states of Definition 6.
  std::vector<bool> UniversalStates() const;

  /// reachable[q] = true iff q is reachable from the start state.
  std::vector<bool> ReachableStates() const;

  // -- Per-symbol analyses for the static update-safety layer ------------
  //
  // src/analysis/ classifies editor operations without touching the tree.
  // The per-(type, symbol) tables it precomputes reduce to these three
  // whole-DFA questions, each quantified over the REACHABLE states only
  // (unreachable rows of the transition table carry no information about
  // accepted strings).

  /// neutral[σ] = true iff δ(q, σ) = q for every reachable state q.
  /// Inserting or deleting one occurrence of σ anywhere in a string then
  /// never changes the run, so such edits are content-model-neutral at any
  /// position and compose freely.
  std::vector<bool> NeutralSymbols() const;

  /// doomed[σ] = true iff δ(q, σ) is co-dead for every reachable state q:
  /// every string in which σ occurs is rejected. An update that makes σ
  /// appear in the child string is then immediately fatal.
  std::vector<bool> DoomedSymbols() const;

  /// True iff δ(q, a) = δ(q, b) for every reachable state q — the two
  /// symbols are interchangeable in any input (the safe-rename condition).
  bool SymbolsIndistinguishable(Symbol a, Symbol b) const;

  /// Reverses the automaton: L(reverse) = { reverse(s) | s ∈ L }. The
  /// result is an NFA (footnote 3 of the paper); determinize with
  /// DeterminizeNfa for reverse scanning.
  Nfa Reverse() const;

  /// Hopcroft minimization. The result is complete, with unreachable states
  /// removed and equivalent states merged.
  Dfa Minimize() const;

  /// Widens the alphabet to `alphabet_size` symbols: new symbols lead every
  /// state to a fresh rejecting sink. Needed when a shared Alphabet grew
  /// after this DFA was compiled (e.g. the cast's other schema interned
  /// more labels) so that product constructions line up. No-op copy when
  /// the size already matches.
  Dfa PaddedTo(size_t alphabet_size) const;

  /// Number of accepting states (diagnostics / tests).
  size_t CountAccepting() const;

 private:
  void Rebind() {
    transitions_ = transitions_store_.data();
    accepting_ = accepting_store_.data();
  }

  size_t alphabet_size_ = 0;
  size_t num_states_ = 0;
  StateId start_ = 0;
  bool borrowed_ = false;
  // Owning storage; empty for borrowed DFAs.
  std::vector<StateId> transitions_store_;
  std::vector<uint8_t> accepting_store_;
  // Read views: alias the owning vectors, or external (mmap'd) memory.
  const StateId* transitions_ = nullptr;  // row-major [state][symbol]
  const uint8_t* accepting_ = nullptr;    // one byte per state
};

/// Subset construction; the result is complete (the empty subset acts as
/// the sink) and contains only subsets reachable from the start set.
Dfa DeterminizeNfa(const Nfa& nfa);

/// Convenience pipeline: ExpandRepeats → Glushkov → determinize → minimize.
/// `require_deterministic`: fail with kInvalidSchema when the expression is
/// not 1-unambiguous (XML's Unique Particle Attribution rule).
Result<Dfa> CompileRegex(const RegexPtr& regex, size_t alphabet_size,
                         bool require_deterministic = false);

}  // namespace xmlreval::automata

#endif  // XMLREVAL_AUTOMATA_DFA_H_
