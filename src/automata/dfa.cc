#include "automata/dfa.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "automata/glushkov.h"
#include "common/macros.h"

namespace xmlreval::automata {

Dfa Dfa::FromExternal(size_t num_states, size_t alphabet_size,
                      StateId start_state, const StateId* transitions,
                      const uint8_t* accepting) {
  Dfa dfa(0, alphabet_size);
  dfa.num_states_ = num_states;
  dfa.start_ = start_state;
  dfa.borrowed_ = true;
  dfa.transitions_ = transitions;
  dfa.accepting_ = accepting;
  return dfa;
}

bool Dfa::IsEmptyLanguage() const {
  std::vector<bool> reachable = ReachableStates();
  for (StateId q = 0; q < num_states(); ++q) {
    if (reachable[q] && accepting_[q]) return false;
  }
  return true;
}

bool Dfa::IsUniversalLanguage() const {
  std::vector<bool> reachable = ReachableStates();
  for (StateId q = 0; q < num_states(); ++q) {
    if (reachable[q] && !accepting_[q]) return false;
  }
  return true;
}

std::vector<bool> Dfa::ReachableStates() const {
  std::vector<bool> reachable(num_states(), false);
  std::deque<StateId> queue{start_};
  reachable[start_] = true;
  while (!queue.empty()) {
    StateId q = queue.front();
    queue.pop_front();
    for (Symbol s = 0; s < alphabet_size_; ++s) {
      StateId next = Next(q, s);
      if (!reachable[next]) {
        reachable[next] = true;
        queue.push_back(next);
      }
    }
  }
  return reachable;
}

namespace {

// Backward closure: marks all states from which some seed state is
// reachable. Linear in the transition table.
std::vector<bool> BackwardClosure(const Dfa& dfa,
                                  const std::vector<bool>& seeds) {
  size_t n = dfa.num_states();
  // Build reverse adjacency once.
  std::vector<std::vector<StateId>> rev(n);
  for (StateId q = 0; q < n; ++q) {
    for (Symbol s = 0; s < dfa.alphabet_size(); ++s) {
      rev[dfa.Next(q, s)].push_back(q);
    }
  }
  std::vector<bool> marked(n, false);
  std::deque<StateId> queue;
  for (StateId q = 0; q < n; ++q) {
    if (seeds[q]) {
      marked[q] = true;
      queue.push_back(q);
    }
  }
  while (!queue.empty()) {
    StateId q = queue.front();
    queue.pop_front();
    for (StateId p : rev[q]) {
      if (!marked[p]) {
        marked[p] = true;
        queue.push_back(p);
      }
    }
  }
  return marked;
}

}  // namespace

std::vector<bool> Dfa::CoDeadStates() const {
  std::vector<bool> accepting_seed(num_states());
  for (StateId q = 0; q < num_states(); ++q) accepting_seed[q] = accepting_[q];
  std::vector<bool> can_accept = BackwardClosure(*this, accepting_seed);
  std::vector<bool> dead(num_states());
  for (StateId q = 0; q < num_states(); ++q) dead[q] = !can_accept[q];
  return dead;
}

std::vector<bool> Dfa::UniversalStates() const {
  // q is universal iff no rejecting state is reachable from q, i.e. q is
  // NOT in the backward closure of the rejecting states.
  std::vector<bool> rejecting(num_states());
  for (StateId q = 0; q < num_states(); ++q) rejecting[q] = !accepting_[q];
  std::vector<bool> can_reject = BackwardClosure(*this, rejecting);
  std::vector<bool> universal(num_states());
  for (StateId q = 0; q < num_states(); ++q) universal[q] = !can_reject[q];
  return universal;
}

std::vector<bool> Dfa::NeutralSymbols() const {
  std::vector<bool> reachable = ReachableStates();
  std::vector<bool> neutral(alphabet_size_, true);
  for (StateId q = 0; q < num_states(); ++q) {
    if (!reachable[q]) continue;
    for (Symbol s = 0; s < alphabet_size_; ++s) {
      if (Next(q, s) != q) neutral[s] = false;
    }
  }
  return neutral;
}

std::vector<bool> Dfa::DoomedSymbols() const {
  std::vector<bool> reachable = ReachableStates();
  std::vector<bool> co_dead = CoDeadStates();
  std::vector<bool> doomed(alphabet_size_, true);
  for (StateId q = 0; q < num_states(); ++q) {
    if (!reachable[q]) continue;
    for (Symbol s = 0; s < alphabet_size_; ++s) {
      if (!co_dead[Next(q, s)]) doomed[s] = false;
    }
  }
  return doomed;
}

bool Dfa::SymbolsIndistinguishable(Symbol a, Symbol b) const {
  if (a >= alphabet_size_ || b >= alphabet_size_) return false;
  if (a == b) return true;
  std::vector<bool> reachable = ReachableStates();
  for (StateId q = 0; q < num_states(); ++q) {
    if (reachable[q] && Next(q, a) != Next(q, b)) return false;
  }
  return true;
}

Nfa Dfa::Reverse() const {
  Nfa nfa(alphabet_size_);
  for (StateId q = 0; q < num_states(); ++q) nfa.AddState();
  for (StateId q = 0; q < num_states(); ++q) {
    for (Symbol s = 0; s < alphabet_size_; ++s) {
      nfa.AddTransition(Next(q, s), s, q);  // reversed edge
    }
    if (accepting_[q]) nfa.AddStartState(q);
  }
  nfa.SetAccepting(start_);
  return nfa;
}

size_t Dfa::CountAccepting() const {
  size_t n = 0;
  for (StateId q = 0; q < num_states(); ++q) {
    if (accepting_[q]) ++n;
  }
  return n;
}

Dfa DeterminizeNfa(const Nfa& nfa) {
  size_t k = nfa.alphabet_size();
  // Subsets as sorted vectors; map subset -> DFA state id.
  std::map<std::vector<StateId>, StateId> subset_ids;
  std::vector<std::vector<StateId>> subsets;
  auto intern = [&](std::vector<StateId> subset) -> StateId {
    std::sort(subset.begin(), subset.end());
    subset.erase(std::unique(subset.begin(), subset.end()), subset.end());
    auto it = subset_ids.find(subset);
    if (it != subset_ids.end()) return it->second;
    StateId id = static_cast<StateId>(subsets.size());
    subset_ids.emplace(subset, id);
    subsets.push_back(std::move(subset));
    return id;
  };

  std::vector<StateId> start(nfa.start_states().begin(),
                             nfa.start_states().end());
  StateId start_id = intern(std::move(start));

  // Transition rows, built as we discover subsets.
  std::vector<std::vector<StateId>> rows;
  for (size_t explored = 0; explored < subsets.size(); ++explored) {
    std::vector<StateId> row(k);
    for (Symbol s = 0; s < k; ++s) {
      std::vector<StateId> next;
      // NOTE: subsets may reallocate inside intern(); copy the source
      // subset before computing targets.
      std::vector<StateId> current = subsets[explored];
      for (StateId q : current) {
        const std::vector<StateId>& targets = nfa.Targets(q, s);
        next.insert(next.end(), targets.begin(), targets.end());
      }
      row[s] = intern(std::move(next));
    }
    rows.push_back(std::move(row));
  }

  Dfa dfa(subsets.size(), k);
  dfa.set_start_state(start_id);
  for (StateId q = 0; q < subsets.size(); ++q) {
    for (Symbol s = 0; s < k; ++s) dfa.SetTransition(q, s, rows[q][s]);
    bool accepting = false;
    for (StateId n : subsets[q]) {
      if (nfa.IsAccepting(n)) {
        accepting = true;
        break;
      }
    }
    dfa.SetAccepting(q, accepting);
  }
  return dfa;
}

Dfa Dfa::Minimize() const {
  size_t n = num_states();
  size_t k = alphabet_size_;

  // Restrict to reachable states first (Hopcroft assumes all states
  // relevant; unreachable states would pollute the partition).
  std::vector<bool> reachable = ReachableStates();
  std::vector<StateId> old_to_compact(n, kInvalidSymbol);
  std::vector<StateId> compact_to_old;
  for (StateId q = 0; q < n; ++q) {
    if (reachable[q]) {
      old_to_compact[q] = static_cast<StateId>(compact_to_old.size());
      compact_to_old.push_back(q);
    }
  }
  size_t m = compact_to_old.size();

  // Reverse adjacency on the compact automaton.
  std::vector<std::vector<std::vector<StateId>>> rev(
      m, std::vector<std::vector<StateId>>(k));
  for (StateId cq = 0; cq < m; ++cq) {
    StateId q = compact_to_old[cq];
    for (Symbol s = 0; s < k; ++s) {
      StateId target = old_to_compact[Next(q, s)];
      rev[target][s].push_back(cq);
    }
  }

  // Hopcroft partition refinement.
  std::vector<int> block_of(m, 0);
  std::vector<std::vector<StateId>> blocks;
  {
    std::vector<StateId> acc, rej;
    for (StateId cq = 0; cq < m; ++cq) {
      (accepting_[compact_to_old[cq]] ? acc : rej).push_back(cq);
    }
    if (!acc.empty()) {
      for (StateId q : acc) block_of[q] = static_cast<int>(blocks.size());
      blocks.push_back(std::move(acc));
    }
    if (!rej.empty()) {
      for (StateId q : rej) block_of[q] = static_cast<int>(blocks.size());
      blocks.push_back(std::move(rej));
    }
  }

  // Worklist of (block index, symbol) splitters.
  std::deque<std::pair<int, Symbol>> worklist;
  std::set<std::pair<int, Symbol>> in_worklist;
  auto push_splitter = [&](int block, Symbol s) {
    if (in_worklist.insert({block, s}).second) worklist.push_back({block, s});
  };
  for (int b = 0; b < static_cast<int>(blocks.size()); ++b) {
    for (Symbol s = 0; s < k; ++s) push_splitter(b, s);
  }

  while (!worklist.empty()) {
    auto [splitter, s] = worklist.front();
    worklist.pop_front();
    in_worklist.erase({splitter, s});

    // pre = states with a transition on s into the splitter block.
    std::vector<StateId> pre;
    for (StateId q : blocks[splitter]) {
      for (StateId p : rev[q][s]) pre.push_back(p);
    }
    if (pre.empty()) continue;

    // Group pre by current block; split blocks that are partially hit.
    std::unordered_map<int, std::vector<StateId>> hits;
    for (StateId p : pre) hits[block_of[p]].push_back(p);

    for (auto& [b, hit_states] : hits) {
      if (hit_states.size() == blocks[b].size()) continue;  // fully hit
      // Deduplicate (a state can appear in pre multiple times).
      std::sort(hit_states.begin(), hit_states.end());
      hit_states.erase(std::unique(hit_states.begin(), hit_states.end()),
                       hit_states.end());
      if (hit_states.size() == blocks[b].size()) continue;

      // New block = hit part; old block keeps the rest.
      int nb = static_cast<int>(blocks.size());
      std::vector<StateId> rest;
      {
        std::unordered_set<StateId> hit_set(hit_states.begin(),
                                            hit_states.end());
        for (StateId q : blocks[b]) {
          if (!hit_set.count(q)) rest.push_back(q);
        }
      }
      if (rest.empty()) continue;  // everything hit after dedup
      for (StateId q : hit_states) block_of[q] = nb;
      blocks.push_back(std::move(hit_states));
      blocks[b] = std::move(rest);

      // Hopcroft: enqueue the smaller of the two parts for every symbol;
      // if (b, s') already queued, the new block must be queued too.
      for (Symbol s2 = 0; s2 < k; ++s2) {
        if (in_worklist.count({b, s2})) {
          push_splitter(nb, s2);
        } else {
          int smaller = blocks[nb].size() < blocks[b].size() ? nb : b;
          push_splitter(smaller, s2);
        }
      }
    }
  }

  // Emit the quotient automaton.
  Dfa out(blocks.size(), k);
  out.set_start_state(block_of[old_to_compact[start_]]);
  for (int b = 0; b < static_cast<int>(blocks.size()); ++b) {
    StateId representative = blocks[b][0];
    StateId old_rep = compact_to_old[representative];
    for (Symbol s = 0; s < k; ++s) {
      out.SetTransition(b, s, block_of[old_to_compact[Next(old_rep, s)]]);
    }
    out.SetAccepting(b, accepting_[old_rep]);
  }
  return out;
}

Dfa Dfa::PaddedTo(size_t alphabet_size) const {
  XMLREVAL_CHECK(alphabet_size >= alphabet_size_,
                 "PaddedTo cannot shrink the alphabet");
  if (alphabet_size == alphabet_size_) return *this;
  size_t n = num_states();
  StateId sink = static_cast<StateId>(n);
  Dfa out(n + 1, alphabet_size);
  out.set_start_state(start_);
  for (StateId q = 0; q < n; ++q) {
    out.SetAccepting(q, accepting_[q]);
    for (Symbol s = 0; s < alphabet_size; ++s) {
      out.SetTransition(q, s, s < alphabet_size_ ? Next(q, s) : sink);
    }
  }
  for (Symbol s = 0; s < alphabet_size; ++s) out.SetTransition(sink, s, sink);
  return out;
}

Result<Dfa> CompileRegex(const RegexPtr& regex, size_t alphabet_size,
                         bool require_deterministic) {
  ASSIGN_OR_RETURN(RegexPtr expanded, ExpandRepeats(regex));
  ASSIGN_OR_RETURN(GlushkovResult glushkov,
                   BuildGlushkov(expanded, alphabet_size));
  if (require_deterministic && !glushkov.one_unambiguous) {
    return Status::InvalidSchema(
        "content model is not deterministic (violates unique particle "
        "attribution)");
  }
  Dfa dfa = DeterminizeNfa(glushkov.nfa);
  return dfa.Minimize();
}

}  // namespace xmlreval::automata
