// Binary round-trips for automata: Dfa, ImmediateDfa, and Regex trees.
//
// Encoders append to a common::ByteWriter; decoders consume a
// common::ByteReader and validate EVERYTHING they read — state counts,
// start states, every transition target, class bytes — so a truncated or
// bit-flipped plan artifact yields a clean kDataLoss error, never an
// out-of-bounds table. Decoding with `borrow = true` hands the table bytes
// of the reader's buffer straight to Dfa::FromExternal (zero-copy over an
// mmap'd plan); the buffer must then outlive the decoded automaton.
// Table sections are 8-byte aligned relative to the buffer start so the
// borrowed uint32 views are naturally aligned.

#ifndef XMLREVAL_AUTOMATA_DFA_SERIALIZE_H_
#define XMLREVAL_AUTOMATA_DFA_SERIALIZE_H_

#include "automata/dfa.h"
#include "automata/immediate.h"
#include "automata/regex.h"
#include "common/result.h"
#include "common/serde.h"

namespace xmlreval::automata {

class DfaCodec {
 public:
  static void Encode(const Dfa& dfa, common::ByteWriter* w);
  /// `borrow`: alias the reader's buffer for the transition/accepting
  /// tables instead of copying them (see header comment).
  static Result<Dfa> Decode(common::ByteReader* r, bool borrow);
};

class ImmediateDfaCodec {
 public:
  static void Encode(const ImmediateDfa& dfa, common::ByteWriter* w);
  static Result<ImmediateDfa> Decode(common::ByteReader* r, bool borrow);
};

class RegexCodec {
 public:
  static void Encode(const RegexPtr& regex, common::ByteWriter* w);
  /// `alphabet_size` bounds symbol leaves. Rejects malformed kinds and
  /// nesting deeper than an internal cap (corrupt input cannot recurse the
  /// decoder off the stack).
  static Result<RegexPtr> Decode(common::ByteReader* r, size_t alphabet_size);
};

}  // namespace xmlreval::automata

#endif  // XMLREVAL_AUTOMATA_DFA_SERIALIZE_H_
