// Glushkov (position) automaton construction and the 1-unambiguity test.
//
// XML requires content models to be deterministic ("1-unambiguous" in the
// sense of Brüggemann-Klein & Wood, cited as [6] by the paper): in the
// Glushkov automaton of the expression, no state may have two outgoing
// transitions on the same symbol to different positions. The paper's
// optimality result for content-model revalidation (Section 5) leans on
// this determinism.
//
// BuildGlushkov computes nullable/first/last/follow over the position-
// annotated expression and returns the position NFA (which is in fact
// deterministic exactly when the expression is 1-unambiguous).

#ifndef XMLREVAL_AUTOMATA_GLUSHKOV_H_
#define XMLREVAL_AUTOMATA_GLUSHKOV_H_

#include "automata/nfa.h"
#include "automata/regex.h"
#include "common/result.h"

namespace xmlreval::automata {

struct GlushkovResult {
  Nfa nfa;
  /// True iff the expression is 1-unambiguous (deterministic content model).
  bool one_unambiguous;
  /// When not 1-unambiguous, the symbol witnessing the conflict.
  Symbol conflict_symbol;
};

/// Builds the Glushkov automaton of `regex`, which must be repeat-free
/// (run ExpandRepeats first). The NFA has one start state (state 0) and one
/// state per symbol position.
Result<GlushkovResult> BuildGlushkov(const RegexPtr& regex,
                                     size_t alphabet_size);

}  // namespace xmlreval::automata

#endif  // XMLREVAL_AUTOMATA_GLUSHKOV_H_
