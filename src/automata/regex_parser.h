// Textual syntax for content-model regular expressions.
//
// Grammar (DTD-flavoured; ',' = sequence, '|' = choice):
//
//   alt     := seq ('|' seq)*
//   seq     := postfix (',' postfix)*
//   postfix := primary ('?' | '*' | '+' | '{' m (',' (n | '*'))? '}')*
//   primary := NAME | '(' alt ')' | '()'          ('()' denotes ε)
//
// Symbol names are interned into the supplied Alphabet. Used directly by
// tests and the DTD front end; the XSD front end builds regexes
// programmatically from particles.

#ifndef XMLREVAL_AUTOMATA_REGEX_PARSER_H_
#define XMLREVAL_AUTOMATA_REGEX_PARSER_H_

#include <string_view>

#include "automata/regex.h"
#include "common/result.h"

namespace xmlreval::automata {

Result<RegexPtr> ParseRegex(std::string_view input, Alphabet* alphabet);

}  // namespace xmlreval::automata

#endif  // XMLREVAL_AUTOMATA_REGEX_PARSER_H_
