// Regular expressions over interned symbols — the content models regexp_τ
// of abstract XML Schema types (Section 3 of the paper).
//
// The AST supports the DTD operators (sequence, choice, ?, *, +) plus
// bounded repetition {m,n} for XML Schema minOccurs/maxOccurs. Repeats are
// rewritten into the core operators by ExpandRepeats() before automaton
// construction, using the nesting E{0,k} = (E (E (...)?)?)? that preserves
// 1-unambiguity.

#ifndef XMLREVAL_AUTOMATA_REGEX_H_
#define XMLREVAL_AUTOMATA_REGEX_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "common/result.h"

namespace xmlreval::automata {

/// "unbounded" in a Repeat node (XSD maxOccurs="unbounded").
inline constexpr uint32_t kUnbounded = std::numeric_limits<uint32_t>::max();

enum class RegexKind : uint8_t {
  kEmptySet,  // ∅ — matches nothing
  kEpsilon,   // ε — matches only the empty string
  kSymbol,    // a single element label
  kConcat,    // sequence
  kAlternate, // choice
  kStar,      // zero or more
  kPlus,      // one or more
  kOptional,  // zero or one
  kRepeat,    // {min,max} bounded/unbounded repetition
};

class Regex;
using RegexPtr = std::shared_ptr<const Regex>;

/// Immutable regex node. Shared subtrees are fine (the tree is never
/// mutated), which keeps ExpandRepeats cheap.
class Regex {
 public:
  static RegexPtr EmptySet();
  static RegexPtr Epsilon();
  static RegexPtr Sym(Symbol symbol);
  static RegexPtr Concat(std::vector<RegexPtr> children);
  static RegexPtr Alternate(std::vector<RegexPtr> children);
  static RegexPtr Star(RegexPtr child);
  static RegexPtr Plus(RegexPtr child);
  static RegexPtr Optional(RegexPtr child);
  static RegexPtr Repeat(RegexPtr child, uint32_t min, uint32_t max);

  RegexKind kind() const { return kind_; }
  Symbol symbol() const { return symbol_; }
  const std::vector<RegexPtr>& children() const { return children_; }
  const RegexPtr& child() const { return children_[0]; }
  uint32_t min() const { return min_; }
  uint32_t max() const { return max_; }

  /// Number of symbol occurrences (Glushkov positions) after repeat
  /// expansion; used to guard against pathological {m,n} blowup.
  uint64_t ExpandedSize() const;

  /// Human-readable rendering using `alphabet` for symbol names.
  std::string ToString(const Alphabet& alphabet) const;

  /// The set of symbols occurring in the expression (the paper's Σ_τ).
  std::vector<Symbol> SymbolsUsed() const;

 private:
  explicit Regex(RegexKind kind) : kind_(kind) {}

  RegexKind kind_;
  Symbol symbol_ = kInvalidSymbol;
  std::vector<RegexPtr> children_;
  uint32_t min_ = 0;
  uint32_t max_ = 0;
};

/// Rewrites every Repeat node into Concat/Optional/Star/Plus form.
/// Fails with kUnsupported when the expansion would exceed `max_positions`
/// Glushkov positions.
Result<RegexPtr> ExpandRepeats(const RegexPtr& regex,
                               uint64_t max_positions = 100000);

}  // namespace xmlreval::automata

#endif  // XMLREVAL_AUTOMATA_REGEX_H_
