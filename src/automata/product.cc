#include "automata/product.h"

#include <deque>

#include "common/macros.h"

namespace xmlreval::automata {

Dfa ProductOf(const Dfa& a, const Dfa& b) {
  XMLREVAL_CHECK(a.alphabet_size() == b.alphabet_size(),
                 "product requires a shared alphabet");
  PairEncoding enc{b.num_states()};
  size_t n = a.num_states() * b.num_states();
  size_t k = a.alphabet_size();
  Dfa c(n, k);
  c.set_start_state(enc.Encode(a.start_state(), b.start_state()));
  for (StateId qa = 0; qa < a.num_states(); ++qa) {
    for (StateId qb = 0; qb < b.num_states(); ++qb) {
      StateId q = enc.Encode(qa, qb);
      c.SetAccepting(q, a.IsAccepting(qa) && b.IsAccepting(qb));
      for (Symbol s = 0; s < k; ++s) {
        c.SetTransition(q, s, enc.Encode(a.Next(qa, s), b.Next(qb, s)));
      }
    }
  }
  return c;
}

namespace {

// BFS over the implicit product from the start pair, restricted to symbols
// with allowed[s] (or all symbols when allowed is empty). Returns true iff
// `stop(qa, qb)` holds for some reachable pair.
template <typename StopFn>
bool ReachableInProduct(const Dfa& a, const Dfa& b,
                        const std::vector<bool>& allowed, StopFn stop) {
  PairEncoding enc{b.num_states()};
  std::vector<bool> visited(a.num_states() * b.num_states(), false);
  std::deque<std::pair<StateId, StateId>> queue;
  queue.emplace_back(a.start_state(), b.start_state());
  visited[enc.Encode(a.start_state(), b.start_state())] = true;
  size_t k = a.alphabet_size();
  while (!queue.empty()) {
    auto [qa, qb] = queue.front();
    queue.pop_front();
    if (stop(qa, qb)) return true;
    for (Symbol s = 0; s < k; ++s) {
      if (!allowed.empty() && !allowed[s]) continue;
      StateId na = a.Next(qa, s);
      StateId nb = b.Next(qb, s);
      StateId code = enc.Encode(na, nb);
      if (!visited[code]) {
        visited[code] = true;
        queue.emplace_back(na, nb);
      }
    }
  }
  return false;
}

}  // namespace

bool LanguageContains(const Dfa& a, const Dfa& b) {
  XMLREVAL_CHECK(a.alphabet_size() == b.alphabet_size(),
                 "containment requires a shared alphabet");
  return !ReachableInProduct(a, b, {}, [&](StateId qa, StateId qb) {
    return a.IsAccepting(qa) && !b.IsAccepting(qb);
  });
}

bool LanguageEquals(const Dfa& a, const Dfa& b) {
  return LanguageContains(a, b) && LanguageContains(b, a);
}

bool IntersectionNonEmptyFiltered(const Dfa& a, const Dfa& b,
                                  const std::vector<bool>& allowed) {
  XMLREVAL_CHECK(a.alphabet_size() == b.alphabet_size(),
                 "intersection requires a shared alphabet");
  XMLREVAL_CHECK(allowed.size() == a.alphabet_size(),
                 "allowed mask must cover the alphabet");
  return ReachableInProduct(a, b, allowed, [&](StateId qa, StateId qb) {
    return a.IsAccepting(qa) && b.IsAccepting(qb);
  });
}

bool LanguageNonEmptyFiltered(const Dfa& a, const std::vector<bool>& allowed) {
  XMLREVAL_CHECK(allowed.size() == a.alphabet_size(),
                 "allowed mask must cover the alphabet");
  std::vector<bool> visited(a.num_states(), false);
  std::deque<StateId> queue{a.start_state()};
  visited[a.start_state()] = true;
  while (!queue.empty()) {
    StateId q = queue.front();
    queue.pop_front();
    if (a.IsAccepting(q)) return true;
    for (Symbol s = 0; s < a.alphabet_size(); ++s) {
      if (!allowed[s]) continue;
      StateId next = a.Next(q, s);
      if (!visited[next]) {
        visited[next] = true;
        queue.push_back(next);
      }
    }
  }
  return false;
}

std::vector<bool> StateContainmentTable(const Dfa& a, const Dfa& b) {
  XMLREVAL_CHECK(a.alphabet_size() == b.alphabet_size(),
                 "containment table requires a shared alphabet");
  // (qa, qb) fails containment iff some "bad" pair — qa' accepting in a,
  // qb' rejecting in b — is reachable from it in the product. Compute the
  // backward closure of the bad pairs over reversed product edges.
  PairEncoding enc{b.num_states()};
  size_t n = a.num_states() * b.num_states();
  size_t k = a.alphabet_size();

  std::vector<std::vector<StateId>> rev(n);
  for (StateId qa = 0; qa < a.num_states(); ++qa) {
    for (StateId qb = 0; qb < b.num_states(); ++qb) {
      StateId from = enc.Encode(qa, qb);
      for (Symbol s = 0; s < k; ++s) {
        rev[enc.Encode(a.Next(qa, s), b.Next(qb, s))].push_back(from);
      }
    }
  }

  std::vector<bool> bad(n, false);
  std::deque<StateId> queue;
  for (StateId qa = 0; qa < a.num_states(); ++qa) {
    for (StateId qb = 0; qb < b.num_states(); ++qb) {
      if (a.IsAccepting(qa) && !b.IsAccepting(qb)) {
        StateId q = enc.Encode(qa, qb);
        bad[q] = true;
        queue.push_back(q);
      }
    }
  }
  while (!queue.empty()) {
    StateId q = queue.front();
    queue.pop_front();
    for (StateId p : rev[q]) {
      if (!bad[p]) {
        bad[p] = true;
        queue.push_back(p);
      }
    }
  }

  std::vector<bool> contains(n);
  for (StateId q = 0; q < n; ++q) contains[q] = !bad[q];
  return contains;
}

}  // namespace xmlreval::automata
