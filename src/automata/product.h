// Product (intersection) automata and language-relation tests (§4.1).
//
// Content-model DFAs are small (tens of states), so products are built
// eagerly over the full Qa × Qb state space with the flat encoding
// q = qa * |Qb| + qb. The relation tests used by the R_sub / R_nondis
// fixpoints (§3.2) — containment and filtered-intersection emptiness — are
// plain reachability over this product.

#ifndef XMLREVAL_AUTOMATA_PRODUCT_H_
#define XMLREVAL_AUTOMATA_PRODUCT_H_

#include <vector>

#include "automata/dfa.h"

namespace xmlreval::automata {

/// Flat encoding of Qa × Qb state pairs.
struct PairEncoding {
  size_t nb;  // |Qb|
  StateId Encode(StateId qa, StateId qb) const {
    return static_cast<StateId>(qa * nb + qb);
  }
  StateId A(StateId pair) const { return static_cast<StateId>(pair / nb); }
  StateId B(StateId pair) const { return static_cast<StateId>(pair % nb); }
};

/// The intersection automaton c of a and b (Definition in §4.1):
/// L(c) = L(a) ∩ L(b). States are all pairs, accepting = Fa × Fb.
/// The two automata must share an alphabet size.
Dfa ProductOf(const Dfa& a, const Dfa& b);

/// L(a) ⊆ L(b): no product state (accepting-in-a, rejecting-in-b) is
/// reachable from (q0a, q0b). O(|Qa|·|Qb|·|Σ|).
bool LanguageContains(const Dfa& a, const Dfa& b);

/// L(a) == L(b).
bool LanguageEquals(const Dfa& a, const Dfa& b);

/// L(a) ∩ L(b) ∩ P* ≠ ∅ where P = { σ | allowed[σ] } (the test at the heart
/// of the R_nondis fixpoint, Definition 5).
bool IntersectionNonEmptyFiltered(const Dfa& a, const Dfa& b,
                                  const std::vector<bool>& allowed);

/// L(a) ∩ P* ≠ ∅ — used by the productivity analysis (§3):
/// ProdLabels* ∩ L(regexp) ≠ ∅.
bool LanguageNonEmptyFiltered(const Dfa& a, const std::vector<bool>& allowed);

/// State-level containment table: contains[(qa,qb)] = (L_a(qa) ⊆ L_b(qb)),
/// for all pairs, computed in linear time via the backward closure of the
/// "bad" pairs (Definition 8 / Theorem 4). This is the IA_c set.
std::vector<bool> StateContainmentTable(const Dfa& a, const Dfa& b);

}  // namespace xmlreval::automata

#endif  // XMLREVAL_AUTOMATA_PRODUCT_H_
