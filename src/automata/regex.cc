#include "automata/regex.h"

#include <algorithm>

namespace xmlreval::automata {

RegexPtr Regex::EmptySet() {
  static const RegexPtr instance(new Regex(RegexKind::kEmptySet));
  return instance;
}

RegexPtr Regex::Epsilon() {
  static const RegexPtr instance(new Regex(RegexKind::kEpsilon));
  return instance;
}

RegexPtr Regex::Sym(Symbol symbol) {
  auto r = std::shared_ptr<Regex>(new Regex(RegexKind::kSymbol));
  r->symbol_ = symbol;
  return r;
}

RegexPtr Regex::Concat(std::vector<RegexPtr> children) {
  if (children.empty()) return Epsilon();
  if (children.size() == 1) return children[0];
  auto r = std::shared_ptr<Regex>(new Regex(RegexKind::kConcat));
  // Flatten nested concatenations for cleaner printing and positions.
  for (RegexPtr& c : children) {
    if (c->kind() == RegexKind::kConcat) {
      for (const RegexPtr& g : c->children()) r->children_.push_back(g);
    } else {
      r->children_.push_back(std::move(c));
    }
  }
  return r;
}

RegexPtr Regex::Alternate(std::vector<RegexPtr> children) {
  if (children.empty()) return EmptySet();
  if (children.size() == 1) return children[0];
  auto r = std::shared_ptr<Regex>(new Regex(RegexKind::kAlternate));
  for (RegexPtr& c : children) {
    if (c->kind() == RegexKind::kAlternate) {
      for (const RegexPtr& g : c->children()) r->children_.push_back(g);
    } else {
      r->children_.push_back(std::move(c));
    }
  }
  return r;
}

RegexPtr Regex::Star(RegexPtr child) {
  auto r = std::shared_ptr<Regex>(new Regex(RegexKind::kStar));
  r->children_.push_back(std::move(child));
  return r;
}

RegexPtr Regex::Plus(RegexPtr child) {
  auto r = std::shared_ptr<Regex>(new Regex(RegexKind::kPlus));
  r->children_.push_back(std::move(child));
  return r;
}

RegexPtr Regex::Optional(RegexPtr child) {
  auto r = std::shared_ptr<Regex>(new Regex(RegexKind::kOptional));
  r->children_.push_back(std::move(child));
  return r;
}

RegexPtr Regex::Repeat(RegexPtr child, uint32_t min, uint32_t max) {
  auto r = std::shared_ptr<Regex>(new Regex(RegexKind::kRepeat));
  r->children_.push_back(std::move(child));
  r->min_ = min;
  r->max_ = max;
  return r;
}

uint64_t Regex::ExpandedSize() const {
  constexpr uint64_t kCap = 1ull << 40;  // avoid overflow on nested repeats
  switch (kind_) {
    case RegexKind::kEmptySet:
    case RegexKind::kEpsilon:
      return 0;
    case RegexKind::kSymbol:
      return 1;
    case RegexKind::kConcat:
    case RegexKind::kAlternate: {
      uint64_t total = 0;
      for (const RegexPtr& c : children_) {
        total += c->ExpandedSize();
        if (total > kCap) return kCap;
      }
      return total;
    }
    case RegexKind::kStar:
    case RegexKind::kPlus:
    case RegexKind::kOptional:
      return children_[0]->ExpandedSize();
    case RegexKind::kRepeat: {
      uint64_t inner = children_[0]->ExpandedSize();
      uint64_t copies = (max_ == kUnbounded)
                            ? std::max<uint64_t>(min_, 1)
                            : std::max<uint64_t>(max_, 1);
      if (inner != 0 && copies > kCap / inner) return kCap;
      return inner * copies;
    }
  }
  return 0;
}

std::string Regex::ToString(const Alphabet& alphabet) const {
  switch (kind_) {
    case RegexKind::kEmptySet:
      return "∅";
    case RegexKind::kEpsilon:
      return "ε";
    case RegexKind::kSymbol:
      return alphabet.Name(symbol_);
    case RegexKind::kConcat: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ",";
        out += children_[i]->ToString(alphabet);
      }
      return out + ")";
    }
    case RegexKind::kAlternate: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += "|";
        out += children_[i]->ToString(alphabet);
      }
      return out + ")";
    }
    case RegexKind::kStar:
      return children_[0]->ToString(alphabet) + "*";
    case RegexKind::kPlus:
      return children_[0]->ToString(alphabet) + "+";
    case RegexKind::kOptional:
      return children_[0]->ToString(alphabet) + "?";
    case RegexKind::kRepeat: {
      std::string out = children_[0]->ToString(alphabet) + "{" +
                        std::to_string(min_) + ",";
      out += (max_ == kUnbounded) ? "∞" : std::to_string(max_);
      return out + "}";
    }
  }
  return "?";
}

namespace {
void CollectSymbols(const Regex& r, std::vector<Symbol>* out) {
  if (r.kind() == RegexKind::kSymbol) {
    out->push_back(r.symbol());
    return;
  }
  for (const RegexPtr& c : r.children()) CollectSymbols(*c, out);
}
}  // namespace

std::vector<Symbol> Regex::SymbolsUsed() const {
  std::vector<Symbol> out;
  CollectSymbols(*this, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

RegexPtr ExpandNode(const RegexPtr& r);

// E{min,max} with the determinism-preserving encoding:
//   E{3,∞}  = E·E·E·E*        E{0,∞} = E*
//   E{2,4}  = E·E·(E·(E)?)?   E{0,3} = (E·(E·(E)?)?)?
RegexPtr ExpandRepeat(const RegexPtr& child, uint32_t min, uint32_t max) {
  RegexPtr e = ExpandNode(child);
  if (max == kUnbounded) {
    if (min == 0) return Regex::Star(e);
    std::vector<RegexPtr> parts;
    for (uint32_t i = 0; i + 1 < min; ++i) parts.push_back(e);
    parts.push_back(Regex::Plus(e));
    return Regex::Concat(std::move(parts));
  }
  if (max == 0) return Regex::Epsilon();
  // Nested optional tail for the (max - min) allowed extras.
  RegexPtr tail;  // null means no tail
  for (uint32_t i = min; i < max; ++i) {
    tail = Regex::Optional(tail ? Regex::Concat({e, tail}) : e);
  }
  std::vector<RegexPtr> parts;
  for (uint32_t i = 0; i < min; ++i) parts.push_back(e);
  if (tail) parts.push_back(tail);
  return Regex::Concat(std::move(parts));
}

RegexPtr ExpandNode(const RegexPtr& r) {
  switch (r->kind()) {
    case RegexKind::kEmptySet:
    case RegexKind::kEpsilon:
    case RegexKind::kSymbol:
      return r;
    case RegexKind::kConcat: {
      std::vector<RegexPtr> children;
      children.reserve(r->children().size());
      for (const RegexPtr& c : r->children()) children.push_back(ExpandNode(c));
      return Regex::Concat(std::move(children));
    }
    case RegexKind::kAlternate: {
      std::vector<RegexPtr> children;
      children.reserve(r->children().size());
      for (const RegexPtr& c : r->children()) children.push_back(ExpandNode(c));
      return Regex::Alternate(std::move(children));
    }
    case RegexKind::kStar:
      return Regex::Star(ExpandNode(r->child()));
    case RegexKind::kPlus:
      return Regex::Plus(ExpandNode(r->child()));
    case RegexKind::kOptional:
      return Regex::Optional(ExpandNode(r->child()));
    case RegexKind::kRepeat:
      return ExpandRepeat(r->child(), r->min(), r->max());
  }
  return r;
}

}  // namespace

Result<RegexPtr> ExpandRepeats(const RegexPtr& regex, uint64_t max_positions) {
  if (regex->ExpandedSize() > max_positions) {
    return Status::Unsupported(
        "content model expands to too many positions (minOccurs/maxOccurs "
        "too large)");
  }
  return ExpandNode(regex);
}

}  // namespace xmlreval::automata
