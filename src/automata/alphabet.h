// Symbol interning shared by schemas, automata, and documents.
//
// The paper assumes both schemas range over the same alphabet Σ of element
// labels. An Alphabet interns label strings to dense uint32 ids so that
// DFAs can use flat transition tables and validators can compare labels by
// id. One Alphabet instance is shared by a source/target schema pair.

#ifndef XMLREVAL_AUTOMATA_ALPHABET_H_
#define XMLREVAL_AUTOMATA_ALPHABET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xmlreval::automata {

using Symbol = uint32_t;
inline constexpr Symbol kInvalidSymbol = 0xFFFFFFFFu;

class Alphabet {
 public:
  /// Returns the id for `name`, interning it if new.
  Symbol Intern(std::string_view name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    Symbol id = static_cast<Symbol>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name`, or nullopt if it was never interned.
  /// Document labels outside Σ can never satisfy any content model, so
  /// validators treat a nullopt as an immediate mismatch. Heterogeneous
  /// lookup: no temporary std::string on this hot path.
  std::optional<Symbol> Find(std::string_view name) const {
    auto it = ids_.find(name);
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& Name(Symbol id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, Symbol, StringHash, std::equal_to<>> ids_;
  std::vector<std::string> names_;
};

}  // namespace xmlreval::automata

#endif  // XMLREVAL_AUTOMATA_ALPHABET_H_
