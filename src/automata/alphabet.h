// Symbol interning shared by schemas, automata, and documents.
//
// The paper assumes both schemas range over the same alphabet Σ of element
// labels. An Alphabet interns label strings to dense uint32 ids so that
// DFAs can use flat transition tables and validators can compare labels by
// id. One Alphabet instance is shared by a source/target schema pair.

#ifndef XMLREVAL_AUTOMATA_ALPHABET_H_
#define XMLREVAL_AUTOMATA_ALPHABET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xmlreval::automata {

using Symbol = uint32_t;
inline constexpr Symbol kInvalidSymbol = 0xFFFFFFFFu;

/// Sentinel carried by document nodes whose label is not (or not yet) in Σ:
/// unbound documents, and bound documents whose labels fall outside the
/// schema pair's alphabet. kUnboundSymbol is never interned and is numerically
/// out of range for every transition table, so a validator that reads it can
/// treat the node exactly like a Find() miss — no match, degrade to the
/// string path or reject per the content model. Distinct from kInvalidSymbol,
/// which marks absent/erroneous symbol values in automata construction.
inline constexpr Symbol kUnboundSymbol = 0xFFFFFFFEu;

// Concurrency contract (single writer / shared readers)
// -----------------------------------------------------
// An Alphabet is append-only: Intern() grows names_/ids_ but never reassigns
// or removes an id, so a Symbol obtained at any point stays valid — and keeps
// naming the same label — for the Alphabet's lifetime. The class itself is
// NOT internally synchronized. The serving layer relies on the following
// discipline (see service/schema_registry.h):
//
//   * Writers (schema registration, parse-time interning) must hold the
//     registry's exclusive lock, or otherwise be the sole thread touching
//     the Alphabet. At most one writer at a time.
//   * Readers (Find/Name/size on validator hot paths, Document::Bind) must
//     hold the registry's shared lock — SchemaRegistry::ReadGuard() — for
//     the duration of the read. Concurrent readers are safe with each other
//     but not with a concurrent Intern().
//   * Symbols and the references returned by Name() may be cached and used
//     after the guard is released; only the lookup itself races with
//     interning.
//
// Offline users (benchmarks, tests, CLI) that never share an Alphabet across
// threads can ignore all of the above.
class Alphabet {
 public:
  /// Returns the id for `name`, interning it if new.
  Symbol Intern(std::string_view name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    Symbol id = static_cast<Symbol>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name`, or nullopt if it was never interned.
  /// Document labels outside Σ can never satisfy any content model, so
  /// validators treat a nullopt as an immediate mismatch. Heterogeneous
  /// lookup: no temporary std::string on this hot path.
  std::optional<Symbol> Find(std::string_view name) const {
    auto it = ids_.find(name);
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& Name(Symbol id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, Symbol, StringHash, std::equal_to<>> ids_;
  std::vector<std::string> names_;
};

}  // namespace xmlreval::automata

#endif  // XMLREVAL_AUTOMATA_ALPHABET_H_
