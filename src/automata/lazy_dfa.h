// Lazy subset construction: determinize a Glushkov NFA one state at a time.
//
// For content models over very large alphabets, eager subset construction
// pays num_states × alphabet_size work and memory up front, even though a
// typical document only ever drives the validator through a handful of
// (state, symbol) pairs. A LazyDfa performs the same subset construction
// but expands a state's transition row only when the validator first steps
// out of that state; rows are memoized, so steady-state stepping is one
// mutex-free row lookup away from eager-DFA speed.
//
// The construction is exactly DeterminizeNfa's: DFA states are interned
// sorted subsets of NFA states, the empty subset is the (self-looping,
// rejecting) sink, and a subset accepts iff it contains an accepting NFA
// state. RestrictTo(allowed) composes the productivity prune of
// SchemaBuilder into the expansion: symbols outside `allowed` lead every
// state to the sink, which is equivalent to the eager prune-then-minimize
// rewrite up to language (Materialized() minimizes, so equal too).
//
// Thread safety: Step/IsAccepting/Materialized may race freely; expansion
// holds an internal mutex. Lazy state ids are interning order and are NOT
// comparable with the minimized ids of Materialized() — callers hold one
// kind or the other, never mix.

#ifndef XMLREVAL_AUTOMATA_LAZY_DFA_H_
#define XMLREVAL_AUTOMATA_LAZY_DFA_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace xmlreval::automata {

class LazyDfa {
 public:
  explicit LazyDfa(Nfa nfa);

  /// Routes every symbol with allowed[s] == false to the sink during
  /// expansion (the productivity rewrite of §3). Must be called before the
  /// first Step/Materialized; expanded rows are not retrofitted.
  void RestrictTo(std::vector<bool> allowed);

  size_t alphabet_size() const { return nfa_.alphabet_size(); }
  StateId start_state() const { return kStart; }

  /// The underlying NFA, for analyses that never need the determinized
  /// table (e.g. NfaLanguageNonEmptyFiltered in the productivity fixpoint).
  const Nfa& nfa() const { return nfa_; }

  /// δ(state, symbol), expanding the row on first use. `symbol` must be
  /// < alphabet_size(); `state` must have come from a previous Step or be
  /// start_state().
  StateId Step(StateId state, Symbol symbol) const;

  bool IsAccepting(StateId state) const;
  bool AcceptsEmpty() const { return IsAccepting(kStart); }

  /// Number of subset states discovered so far (diagnostics / tests).
  size_t num_expanded_states() const;

  /// Completes the subset construction from whatever rows are already
  /// memoized, minimizes, and caches the result; later calls are free.
  /// This is the escape hatch for consumers that need a full table —
  /// product constructions, relations fixpoints, serialization.
  const Dfa& Materialized() const;

  /// True once Materialized() has run (plan-save introspection).
  bool is_materialized() const;

 private:
  static constexpr StateId kSink = 0;
  static constexpr StateId kStart = 1;

  // Interns a sorted deduplicated subset; requires lock held. May grow
  // subsets_/rows_/accepting_.
  StateId InternLocked(std::vector<StateId> subset) const;
  // Expands the row for `state` if absent; requires exclusive lock held.
  void ExpandLocked(StateId state) const;

  Nfa nfa_;
  std::vector<bool> allowed_;  // empty = all symbols allowed

  mutable std::shared_mutex mu_;
  // All mutable state below is guarded by mu_. Subsets are sorted unique
  // NFA-state vectors; subset_ids_ maps them back to lazy ids.
  mutable std::map<std::vector<StateId>, StateId> subset_ids_;
  mutable std::vector<std::vector<StateId>> subsets_;
  // rows_[q] is empty until expanded (alphabet_size entries afterwards);
  // expanded_[q] distinguishes "unexpanded" from a legitimate row.
  mutable std::vector<std::vector<StateId>> rows_;
  mutable std::vector<uint8_t> expanded_;
  mutable std::vector<uint8_t> accepting_;

  mutable std::once_flag materialize_once_;
  mutable std::optional<Dfa> materialized_;
};

/// BFS emptiness test directly on an NFA, restricted to `allowed` symbols:
/// true iff some string over the allowed subset is accepted. The lazy
/// counterpart of LanguageNonEmptyFiltered (which needs a full DFA).
bool NfaLanguageNonEmptyFiltered(const Nfa& nfa,
                                 const std::vector<bool>& allowed);

}  // namespace xmlreval::automata

#endif  // XMLREVAL_AUTOMATA_LAZY_DFA_H_
