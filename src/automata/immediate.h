// Immediate decision automata (§4.1, Definitions 6–8).
//
// An ImmediateDfa is a complete DFA whose states are classified as normal,
// immediate-accept (IA) or immediate-reject (IR). Running it over a string
// stops — with a verdict — as soon as an IA or IR state is entered; the
// verdict after a full scan is the usual acceptance test. Per Proposition 3
// the derived pair automaton c_immed is optimal: no deterministic immediate
// decision automaton for L(a) ∩ L(b) can decide any string earlier.
//
// Two constructions:
//   * FromSingle(b): IA = states with L(q) = Σ* (universal), IR = states
//     with L(q) = ∅ (co-dead). This is b_immed of §4.3.
//   * FromPair(a, b): the intersection automaton, with IA = pairs where
//     L_a(qa) ⊆ L_b(qb) (Definitions 7/8) and IR = its dead states. This is
//     c_immed; used when the input is known to be in L(a).

#ifndef XMLREVAL_AUTOMATA_IMMEDIATE_H_
#define XMLREVAL_AUTOMATA_IMMEDIATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "automata/dfa.h"
#include "automata/product.h"

namespace xmlreval::automata {

enum class StateClass : uint8_t {
  kNormal,
  kImmediateAccept,
  kImmediateReject,
};

enum class Verdict : uint8_t { kAccept, kReject };

/// Outcome of running an immediate decision automaton.
struct ImmediateRunResult {
  Verdict verdict;
  /// Symbols consumed before the verdict (== input length when no
  /// immediate state was hit). The optimality metric of Proposition 3.
  size_t symbols_scanned;
  /// Whether the verdict came from an IA/IR state rather than end-of-input.
  bool decided_early;
  /// State reached when the run ended (the IA/IR state for early verdicts).
  StateId final_state;
};

class ImmediateDfa {
 public:
  /// b_immed: early verdicts from universality/deadness of b's states.
  static ImmediateDfa FromSingle(const Dfa& b);

  /// c_immed: intersection automaton of a and b with IA per Definition 7
  /// (computed via the equivalent Definition 8) and IR = dead states.
  /// Exposes the pair encoding so callers can resume from (qa, qb).
  static ImmediateDfa FromPair(const Dfa& a, const Dfa& b);

  /// Runs over `input` starting from `from`, stopping at the first IA/IR
  /// state (including `from` itself, before consuming any symbol).
  ImmediateRunResult Run(std::span<const Symbol> input, StateId from) const;
  ImmediateRunResult Run(std::span<const Symbol> input) const {
    return Run(input, dfa_.start_state());
  }

  const Dfa& dfa() const { return dfa_; }
  StateClass Class(StateId q) const { return classes_[q]; }
  size_t CountClass(StateClass c) const;

  /// Raw classification view, one byte per state (serialization).
  const StateClass* classes_data() const { return classes_; }

  /// Pair encoding for FromPair-built automata (nb == 0 for FromSingle).
  const PairEncoding& pair_encoding() const { return encoding_; }
  bool is_pair() const { return encoding_.nb != 0; }

  ImmediateDfa(const ImmediateDfa& other)
      : dfa_(other.dfa_),
        classes_store_(other.classes_store_),
        encoding_(other.encoding_) {
    classes_ = classes_store_.empty() ? other.classes_ : classes_store_.data();
  }
  ImmediateDfa& operator=(const ImmediateDfa& other) {
    if (this == &other) return *this;
    dfa_ = other.dfa_;
    classes_store_ = other.classes_store_;
    encoding_ = other.encoding_;
    classes_ = classes_store_.empty() ? other.classes_ : classes_store_.data();
    return *this;
  }
  // Vector moves keep the heap buffer, so the classes_ view stays valid.
  ImmediateDfa(ImmediateDfa&&) noexcept = default;
  ImmediateDfa& operator=(ImmediateDfa&&) noexcept = default;

 private:
  friend class ImmediateDfaCodec;

  ImmediateDfa(Dfa dfa, std::vector<StateClass> classes, PairEncoding enc)
      : dfa_(std::move(dfa)), classes_store_(std::move(classes)),
        encoding_(enc) {
    classes_ = classes_store_.data();
  }
  /// Borrowed-classification constructor (plan cache): `classes` aliases
  /// caller-managed memory (one byte per state) that must outlive the
  /// automaton and all its copies.
  ImmediateDfa(Dfa dfa, const StateClass* classes, PairEncoding enc)
      : dfa_(std::move(dfa)), classes_(classes), encoding_(enc) {}

  Dfa dfa_;
  std::vector<StateClass> classes_store_;  // empty when borrowed
  const StateClass* classes_ = nullptr;
  PairEncoding encoding_{0};
};

}  // namespace xmlreval::automata

#endif  // XMLREVAL_AUTOMATA_IMMEDIATE_H_
