#include "automata/dfa_serialize.h"

#include <cstring>
#include <limits>
#include <utility>
#include <vector>

namespace xmlreval::automata {

namespace {

// Decoders cap counts so corrupt headers cannot drive multi-gigabyte
// allocations before the bounds checks kick in. Real content-model DFAs
// are tens of states over alphabets of at most a few thousand labels.
constexpr uint64_t kMaxStates = 1u << 24;
constexpr uint64_t kMaxAlphabet = 1u << 22;
constexpr uint64_t kMaxTableBytes = 1ull << 32;

Status Corrupt(const char* what) {
  return Status::DataLoss(std::string("plan artifact: ") + what);
}

}  // namespace

void DfaCodec::Encode(const Dfa& dfa, common::ByteWriter* w) {
  w->U32(static_cast<uint32_t>(dfa.num_states()));
  w->U32(static_cast<uint32_t>(dfa.alphabet_size()));
  w->U32(dfa.start_state());
  w->AlignTo(8);
  w->Bytes(dfa.transitions_data(),
           dfa.num_states() * dfa.alphabet_size() * sizeof(StateId));
  // Accepting flags are normalized to 0/1 so encodings are byte-stable.
  for (StateId q = 0; q < dfa.num_states(); ++q) {
    w->U8(dfa.IsAccepting(q) ? 1 : 0);
  }
  w->AlignTo(8);
}

Result<Dfa> DfaCodec::Decode(common::ByteReader* r, bool borrow) {
  uint64_t num_states = r->U32();
  uint64_t alphabet_size = r->U32();
  StateId start = r->U32();
  if (!r->ok()) return Corrupt("truncated DFA header");
  if (num_states == 0 || num_states > kMaxStates ||
      alphabet_size > kMaxAlphabet ||
      num_states * alphabet_size * sizeof(StateId) > kMaxTableBytes) {
    return Corrupt("implausible DFA dimensions");
  }
  if (start >= num_states) return Corrupt("DFA start state out of range");
  r->AlignTo(8);
  const size_t table = num_states * alphabet_size;
  const uint8_t* transitions_raw = r->Raw(table * sizeof(StateId));
  const uint8_t* accepting_raw = r->Raw(num_states);
  r->AlignTo(8);
  if (!r->ok()) return Corrupt("truncated DFA tables");

  const StateId* transitions =
      reinterpret_cast<const StateId*>(transitions_raw);
  // Every target must be a real state — a bit flip in the table must never
  // become an out-of-bounds Next(). A linear pass over bytes that are about
  // to be page-cache-resident anyway; no per-process table copy is built.
  for (size_t i = 0; i < table; ++i) {
    if (transitions[i] >= num_states) {
      return Corrupt("DFA transition target out of range");
    }
  }
  for (size_t q = 0; q < num_states; ++q) {
    if (accepting_raw[q] > 1) return Corrupt("DFA accepting flag not 0/1");
  }

  if (borrow) {
    return Dfa::FromExternal(num_states, alphabet_size, start, transitions,
                             accepting_raw);
  }
  Dfa dfa(num_states, alphabet_size);
  dfa.set_start_state(start);
  for (StateId q = 0; q < num_states; ++q) {
    dfa.SetAccepting(q, accepting_raw[q] != 0);
    for (Symbol s = 0; s < alphabet_size; ++s) {
      dfa.SetTransition(q, s, transitions[q * alphabet_size + s]);
    }
  }
  return dfa;
}

void ImmediateDfaCodec::Encode(const ImmediateDfa& dfa,
                               common::ByteWriter* w) {
  DfaCodec::Encode(dfa.dfa(), w);
  w->U64(dfa.pair_encoding().nb);
  w->Bytes(dfa.classes_data(), dfa.dfa().num_states());
  w->AlignTo(8);
}

Result<ImmediateDfa> ImmediateDfaCodec::Decode(common::ByteReader* r,
                                               bool borrow) {
  ASSIGN_OR_RETURN(Dfa dfa, DfaCodec::Decode(r, borrow));
  uint64_t nb = r->U64();
  const uint8_t* classes_raw = r->Raw(dfa.num_states());
  r->AlignTo(8);
  if (!r->ok()) return Corrupt("truncated immediate-DFA classes");
  if (nb > kMaxStates) return Corrupt("pair encoding out of range");
  for (size_t q = 0; q < dfa.num_states(); ++q) {
    if (classes_raw[q] > static_cast<uint8_t>(StateClass::kImmediateReject)) {
      return Corrupt("invalid immediate state class");
    }
  }
  PairEncoding enc{static_cast<size_t>(nb)};
  if (borrow) {
    return ImmediateDfa(std::move(dfa),
                        reinterpret_cast<const StateClass*>(classes_raw),
                        enc);
  }
  std::vector<StateClass> classes(dfa.num_states());
  std::memcpy(classes.data(), classes_raw, classes.size());
  return ImmediateDfa(std::move(dfa), std::move(classes), enc);
}

void RegexCodec::Encode(const RegexPtr& regex, common::ByteWriter* w) {
  w->U8(static_cast<uint8_t>(regex->kind()));
  switch (regex->kind()) {
    case RegexKind::kEmptySet:
    case RegexKind::kEpsilon:
      break;
    case RegexKind::kSymbol:
      w->U32(regex->symbol());
      break;
    case RegexKind::kConcat:
    case RegexKind::kAlternate:
      w->U32(static_cast<uint32_t>(regex->children().size()));
      for (const RegexPtr& child : regex->children()) Encode(child, w);
      break;
    case RegexKind::kStar:
    case RegexKind::kPlus:
    case RegexKind::kOptional:
      Encode(regex->child(), w);
      break;
    case RegexKind::kRepeat:
      w->U32(regex->min());
      w->U32(regex->max());
      Encode(regex->child(), w);
      break;
  }
}

namespace {

constexpr int kMaxRegexDepth = 512;
constexpr uint32_t kMaxRegexChildren = 1u << 20;

Result<RegexPtr> DecodeRegexNode(common::ByteReader* r, size_t alphabet_size,
                                 int depth) {
  if (depth > kMaxRegexDepth) return Corrupt("regex nesting too deep");
  uint8_t kind = r->U8();
  if (!r->ok()) return Corrupt("truncated regex");
  switch (static_cast<RegexKind>(kind)) {
    case RegexKind::kEmptySet:
      return Regex::EmptySet();
    case RegexKind::kEpsilon:
      return Regex::Epsilon();
    case RegexKind::kSymbol: {
      Symbol s = r->U32();
      if (!r->ok() || s >= alphabet_size) {
        return Corrupt("regex symbol out of range");
      }
      return Regex::Sym(s);
    }
    case RegexKind::kConcat:
    case RegexKind::kAlternate: {
      uint32_t n = r->U32();
      if (!r->ok() || n > kMaxRegexChildren) {
        return Corrupt("implausible regex arity");
      }
      std::vector<RegexPtr> children;
      children.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(RegexPtr child,
                         DecodeRegexNode(r, alphabet_size, depth + 1));
        children.push_back(std::move(child));
      }
      return static_cast<RegexKind>(kind) == RegexKind::kConcat
                 ? Regex::Concat(std::move(children))
                 : Regex::Alternate(std::move(children));
    }
    case RegexKind::kStar:
    case RegexKind::kPlus:
    case RegexKind::kOptional: {
      ASSIGN_OR_RETURN(RegexPtr child,
                       DecodeRegexNode(r, alphabet_size, depth + 1));
      switch (static_cast<RegexKind>(kind)) {
        case RegexKind::kStar:
          return Regex::Star(std::move(child));
        case RegexKind::kPlus:
          return Regex::Plus(std::move(child));
        default:
          return Regex::Optional(std::move(child));
      }
    }
    case RegexKind::kRepeat: {
      uint32_t min = r->U32();
      uint32_t max = r->U32();
      if (!r->ok()) return Corrupt("truncated regex repeat bounds");
      ASSIGN_OR_RETURN(RegexPtr child,
                       DecodeRegexNode(r, alphabet_size, depth + 1));
      return Regex::Repeat(std::move(child), min, max);
    }
  }
  return Corrupt("unknown regex node kind");
}

}  // namespace

Result<RegexPtr> RegexCodec::Decode(common::ByteReader* r,
                                    size_t alphabet_size) {
  return DecodeRegexNode(r, alphabet_size, 0);
}

}  // namespace xmlreval::automata
