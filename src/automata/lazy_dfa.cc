#include "automata/lazy_dfa.h"

#include <algorithm>
#include <deque>
#include <utility>

namespace xmlreval::automata {

LazyDfa::LazyDfa(Nfa nfa) : nfa_(std::move(nfa)) {
  // Seed the two fixed states. The sink (empty subset) gets its row
  // immediately — all self-loops — so Step never expands it.
  std::unique_lock lock(mu_);
  StateId sink = InternLocked({});
  std::vector<StateId> start(nfa_.start_states().begin(),
                             nfa_.start_states().end());
  std::sort(start.begin(), start.end());
  start.erase(std::unique(start.begin(), start.end()), start.end());
  // An NFA whose start set is empty has the sink as its start; intern
  // order still assigns it id kStart so the id contract holds.
  StateId start_id = InternLocked(std::move(start));
  XMLREVAL_CHECK(sink == kSink && start_id == kStart,
                 "lazy DFA seed states out of order");
  rows_[kSink].assign(nfa_.alphabet_size(), kSink);
  expanded_[kSink] = 1;
}

void LazyDfa::RestrictTo(std::vector<bool> allowed) {
  std::unique_lock lock(mu_);
  XMLREVAL_CHECK(subsets_.size() == 2 && !expanded_[kStart],
                 "RestrictTo after expansion started");
  allowed_ = std::move(allowed);
}

StateId LazyDfa::InternLocked(std::vector<StateId> subset) const {
  auto it = subset_ids_.find(subset);
  if (it != subset_ids_.end()) return it->second;
  StateId id = static_cast<StateId>(subsets_.size());
  bool accepting = false;
  for (StateId n : subset) {
    if (nfa_.IsAccepting(n)) {
      accepting = true;
      break;
    }
  }
  subset_ids_.emplace(subset, id);
  subsets_.push_back(std::move(subset));
  rows_.emplace_back();
  expanded_.push_back(0);
  accepting_.push_back(accepting ? 1 : 0);
  return id;
}

void LazyDfa::ExpandLocked(StateId state) const {
  if (expanded_[state]) return;
  const size_t k = nfa_.alphabet_size();
  std::vector<StateId> row(k, kSink);
  // Copy the subset: InternLocked may reallocate subsets_ mid-loop.
  const std::vector<StateId> current = subsets_[state];
  for (Symbol s = 0; s < k; ++s) {
    if (!allowed_.empty() && (s >= allowed_.size() || !allowed_[s])) {
      continue;  // pruned symbol → sink
    }
    std::vector<StateId> next;
    for (StateId q : current) {
      const std::vector<StateId>& targets = nfa_.Targets(q, s);
      next.insert(next.end(), targets.begin(), targets.end());
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    row[s] = InternLocked(std::move(next));
  }
  rows_[state] = std::move(row);
  expanded_[state] = 1;
}

StateId LazyDfa::Step(StateId state, Symbol symbol) const {
  {
    std::shared_lock lock(mu_);
    if (expanded_[state]) return rows_[state][symbol];
  }
  std::unique_lock lock(mu_);
  ExpandLocked(state);
  return rows_[state][symbol];
}

bool LazyDfa::IsAccepting(StateId state) const {
  std::shared_lock lock(mu_);
  return accepting_[state] != 0;
}

size_t LazyDfa::num_expanded_states() const {
  std::shared_lock lock(mu_);
  return subsets_.size();
}

const Dfa& LazyDfa::Materialized() const {
  std::call_once(materialize_once_, [this] {
    std::unique_lock lock(mu_);
    // Complete the construction: expand every discovered state until no
    // unexpanded state remains (expansion discovers more states, so this
    // is the standard worklist sweep — memoized rows are reused as-is).
    for (size_t q = 0; q < subsets_.size(); ++q) {
      ExpandLocked(static_cast<StateId>(q));
    }
    const size_t n = subsets_.size();
    const size_t k = nfa_.alphabet_size();
    Dfa dfa(n, k);
    dfa.set_start_state(kStart);
    for (StateId q = 0; q < n; ++q) {
      for (Symbol s = 0; s < k; ++s) dfa.SetTransition(q, s, rows_[q][s]);
      dfa.SetAccepting(q, accepting_[q] != 0);
    }
    materialized_ = dfa.Minimize();
  });
  return *materialized_;
}

bool LazyDfa::is_materialized() const {
  std::shared_lock lock(mu_);
  return materialized_.has_value();
}

bool NfaLanguageNonEmptyFiltered(const Nfa& nfa,
                                 const std::vector<bool>& allowed) {
  std::vector<bool> visited(nfa.num_states(), false);
  std::deque<StateId> frontier;
  for (StateId q : nfa.start_states()) {
    if (!visited[q]) {
      if (nfa.IsAccepting(q)) return true;  // ε is always over allowed
      visited[q] = true;
      frontier.push_back(q);
    }
  }
  while (!frontier.empty()) {
    StateId q = frontier.front();
    frontier.pop_front();
    for (const auto& [symbol, targets] : nfa.TransitionsFrom(q)) {
      if (symbol < allowed.size() && !allowed[symbol]) continue;
      for (StateId t : targets) {
        if (visited[t]) continue;
        if (nfa.IsAccepting(t)) return true;
        visited[t] = true;
        frontier.push_back(t);
      }
    }
  }
  return false;
}

}  // namespace xmlreval::automata
