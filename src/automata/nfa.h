// Nondeterministic finite automata (no epsilon transitions).
//
// NFAs appear in two places: as the output of the Glushkov construction
// (glushkov.h) and as reversals of DFAs (§4.3's reverse-scan optimization).
// Subset construction to a complete DFA lives in dfa.h.

#ifndef XMLREVAL_AUTOMATA_NFA_H_
#define XMLREVAL_AUTOMATA_NFA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "automata/alphabet.h"

namespace xmlreval::automata {

using StateId = uint32_t;

class Nfa {
 public:
  explicit Nfa(size_t alphabet_size) : alphabet_size_(alphabet_size) {}

  StateId AddState() {
    transitions_.emplace_back();
    accepting_.push_back(false);
    return static_cast<StateId>(transitions_.size() - 1);
  }

  void AddTransition(StateId from, Symbol symbol, StateId to) {
    transitions_[from][symbol].push_back(to);
  }

  void SetAccepting(StateId state, bool accepting = true) {
    accepting_[state] = accepting;
  }
  void AddStartState(StateId state) { start_states_.push_back(state); }

  size_t num_states() const { return transitions_.size(); }
  size_t alphabet_size() const { return alphabet_size_; }
  bool IsAccepting(StateId state) const { return accepting_[state]; }
  const std::vector<StateId>& start_states() const { return start_states_; }

  /// Targets of (state, symbol); empty when none.
  const std::vector<StateId>& Targets(StateId state, Symbol symbol) const {
    static const std::vector<StateId> kEmpty;
    auto it = transitions_[state].find(symbol);
    return it == transitions_[state].end() ? kEmpty : it->second;
  }

  const std::unordered_map<Symbol, std::vector<StateId>>& TransitionsFrom(
      StateId state) const {
    return transitions_[state];
  }

 private:
  size_t alphabet_size_;
  std::vector<std::unordered_map<Symbol, std::vector<StateId>>> transitions_;
  std::vector<bool> accepting_;
  std::vector<StateId> start_states_;
};

}  // namespace xmlreval::automata

#endif  // XMLREVAL_AUTOMATA_NFA_H_
