#include "automata/glushkov.h"

#include <unordered_map>

#include "common/macros.h"

namespace xmlreval::automata {
namespace {

// A position is an occurrence of a symbol in the expression, numbered from
// 1 (position 0 is the Glushkov start state).
struct Positions {
  std::vector<Symbol> symbol_of;  // symbol_of[p] for p >= 1; [0] unused
};

struct NodeFacts {
  bool nullable = false;
  std::vector<uint32_t> first;
  std::vector<uint32_t> last;
};

class Builder {
 public:
  explicit Builder(size_t alphabet_size) : alphabet_size_(alphabet_size) {
    positions_.symbol_of.push_back(kInvalidSymbol);  // position 0 = start
  }

  Result<GlushkovResult> Build(const RegexPtr& regex) {
    ASSIGN_OR_RETURN(NodeFacts root, Visit(regex));

    size_t n = positions_.symbol_of.size();  // states 0..n-1
    follow_.resize(n);
    // Recompute follow via the visit (already filled in Visit).

    Nfa nfa(alphabet_size_);
    for (size_t i = 0; i < n; ++i) nfa.AddState();
    nfa.AddStartState(0);
    if (root.nullable) nfa.SetAccepting(0);
    for (uint32_t p : root.last) nfa.SetAccepting(p);

    bool deterministic = true;
    Symbol conflict = kInvalidSymbol;

    auto add_edges = [&](StateId from, const std::vector<uint32_t>& targets) {
      std::unordered_map<Symbol, uint32_t> seen;
      for (uint32_t p : targets) {
        Symbol s = positions_.symbol_of[p];
        auto [it, fresh] = seen.emplace(s, p);
        if (!fresh && it->second != p) {
          deterministic = false;
          conflict = s;
        }
        nfa.AddTransition(from, s, p);
      }
    };

    add_edges(0, root.first);
    for (size_t p = 1; p < n; ++p) {
      add_edges(static_cast<StateId>(p), follow_[p]);
    }

    return GlushkovResult{std::move(nfa), deterministic, conflict};
  }

 private:
  // Appends `src` into `dst` (sets are small; duplicates are avoided by
  // construction since positions are unique per occurrence).
  static void Union(std::vector<uint32_t>* dst, const std::vector<uint32_t>& src) {
    dst->insert(dst->end(), src.begin(), src.end());
  }

  void AddFollow(const std::vector<uint32_t>& from,
                 const std::vector<uint32_t>& to) {
    for (uint32_t p : from) Union(&follow_[p], to);
  }

  Result<NodeFacts> Visit(const RegexPtr& r) {
    switch (r->kind()) {
      case RegexKind::kEmptySet: {
        return NodeFacts{false, {}, {}};
      }
      case RegexKind::kEpsilon: {
        return NodeFacts{true, {}, {}};
      }
      case RegexKind::kSymbol: {
        uint32_t p = static_cast<uint32_t>(positions_.symbol_of.size());
        positions_.symbol_of.push_back(r->symbol());
        follow_.emplace_back();  // keep follow_ sized with positions
        return NodeFacts{false, {p}, {p}};
      }
      case RegexKind::kConcat: {
        NodeFacts acc{true, {}, {}};
        bool first_open = true;  // all children so far nullable
        for (const RegexPtr& c : r->children()) {
          ASSIGN_OR_RETURN(NodeFacts f, Visit(c));
          AddFollow(acc.last, f.first);
          if (first_open) Union(&acc.first, f.first);
          if (f.nullable) {
            Union(&acc.last, f.last);
          } else {
            acc.last = f.last;
          }
          first_open = first_open && f.nullable;
          acc.nullable = acc.nullable && f.nullable;
        }
        return acc;
      }
      case RegexKind::kAlternate: {
        NodeFacts acc{false, {}, {}};
        for (const RegexPtr& c : r->children()) {
          ASSIGN_OR_RETURN(NodeFacts f, Visit(c));
          acc.nullable = acc.nullable || f.nullable;
          Union(&acc.first, f.first);
          Union(&acc.last, f.last);
        }
        return acc;
      }
      case RegexKind::kStar: {
        ASSIGN_OR_RETURN(NodeFacts f, Visit(r->child()));
        AddFollow(f.last, f.first);
        f.nullable = true;
        return f;
      }
      case RegexKind::kPlus: {
        ASSIGN_OR_RETURN(NodeFacts f, Visit(r->child()));
        AddFollow(f.last, f.first);
        return f;
      }
      case RegexKind::kOptional: {
        ASSIGN_OR_RETURN(NodeFacts f, Visit(r->child()));
        f.nullable = true;
        return f;
      }
      case RegexKind::kRepeat:
        return Status::FailedPrecondition(
            "BuildGlushkov requires a repeat-free expression; call "
            "ExpandRepeats first");
    }
    return Status::Internal("unknown regex kind");
  }

  size_t alphabet_size_;
  Positions positions_;
  // follow_[p] for positions p >= 1; slot 0 (the start state) is unused.
  std::vector<std::vector<uint32_t>> follow_ =
      std::vector<std::vector<uint32_t>>(1);
};

}  // namespace

Result<GlushkovResult> BuildGlushkov(const RegexPtr& regex,
                                     size_t alphabet_size) {
  return Builder(alphabet_size).Build(regex);
}

}  // namespace xmlreval::automata
