#include "automata/immediate.h"

namespace xmlreval::automata {

ImmediateDfa ImmediateDfa::FromSingle(const Dfa& b) {
  std::vector<bool> universal = b.UniversalStates();
  std::vector<bool> dead = b.CoDeadStates();
  std::vector<StateClass> classes(b.num_states(), StateClass::kNormal);
  for (StateId q = 0; q < b.num_states(); ++q) {
    if (universal[q]) {
      classes[q] = StateClass::kImmediateAccept;
    } else if (dead[q]) {
      classes[q] = StateClass::kImmediateReject;
    }
  }
  return ImmediateDfa(b, std::move(classes), PairEncoding{0});
}

ImmediateDfa ImmediateDfa::FromPair(const Dfa& a, const Dfa& b) {
  Dfa c = ProductOf(a, b);
  // IA per Definition 8: pairs from which every reachable (q1, q2) with
  // q1 ∈ F_a has q2 ∈ F_b — exactly the state-containment table.
  std::vector<bool> ia = StateContainmentTable(a, b);
  // IR: dead states of the intersection automaton (no F_a × F_b reachable).
  std::vector<bool> ir = c.CoDeadStates();
  std::vector<StateClass> classes(c.num_states(), StateClass::kNormal);
  for (StateId q = 0; q < c.num_states(); ++q) {
    if (ia[q]) {
      classes[q] = StateClass::kImmediateAccept;
    } else if (ir[q]) {
      classes[q] = StateClass::kImmediateReject;
    }
  }
  PairEncoding enc{b.num_states()};
  return ImmediateDfa(std::move(c), std::move(classes), enc);
}

ImmediateRunResult ImmediateDfa::Run(std::span<const Symbol> input,
                                     StateId from) const {
  StateId q = from;
  size_t scanned = 0;
  while (true) {
    StateClass cls = classes_[q];
    if (cls == StateClass::kImmediateAccept) {
      return {Verdict::kAccept, scanned, true, q};
    }
    if (cls == StateClass::kImmediateReject) {
      return {Verdict::kReject, scanned, true, q};
    }
    if (scanned == input.size()) break;
    q = dfa_.Next(q, input[scanned]);
    ++scanned;
  }
  return {dfa_.IsAccepting(q) ? Verdict::kAccept : Verdict::kReject, scanned,
          false, q};
}

size_t ImmediateDfa::CountClass(StateClass c) const {
  size_t n = 0;
  for (size_t q = 0; q < dfa_.num_states(); ++q) {
    if (classes_[q] == c) ++n;
  }
  return n;
}

}  // namespace xmlreval::automata
