#include "automata/regex_parser.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace xmlreval::automata {
namespace {

class RegexParser {
 public:
  RegexParser(std::string_view input, Alphabet* alphabet)
      : input_(input), alphabet_(alphabet) {}

  Result<RegexPtr> Parse() {
    ASSIGN_OR_RETURN(RegexPtr r, ParseAlt());
    SkipWs();
    if (pos_ != input_.size()) {
      return Error("unexpected trailing input");
    }
    return r;
  }

 private:
  void SkipWs() {
    while (pos_ < input_.size() && IsXmlWhitespace(input_[pos_])) ++pos_;
  }
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Match(char c) {
    SkipWs();
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }
  Status Error(std::string_view msg) const {
    return Status::ParseError("regex parse error at offset " +
                              std::to_string(pos_) + ": " + std::string(msg) +
                              " in '" + std::string(input_) + "'");
  }

  Result<RegexPtr> ParseAlt() {
    ASSIGN_OR_RETURN(RegexPtr first, ParseSeq());
    std::vector<RegexPtr> branches{first};
    while (Match('|')) {
      ASSIGN_OR_RETURN(RegexPtr next, ParseSeq());
      branches.push_back(next);
    }
    return Regex::Alternate(std::move(branches));
  }

  Result<RegexPtr> ParseSeq() {
    ASSIGN_OR_RETURN(RegexPtr first, ParsePostfix());
    std::vector<RegexPtr> parts{first};
    while (Match(',')) {
      ASSIGN_OR_RETURN(RegexPtr next, ParsePostfix());
      parts.push_back(next);
    }
    return Regex::Concat(std::move(parts));
  }

  Result<RegexPtr> ParsePostfix() {
    ASSIGN_OR_RETURN(RegexPtr r, ParsePrimary());
    while (true) {
      SkipWs();
      if (AtEnd()) return r;
      char c = Peek();
      if (c == '?') {
        ++pos_;
        r = Regex::Optional(std::move(r));
      } else if (c == '*') {
        ++pos_;
        r = Regex::Star(std::move(r));
      } else if (c == '+') {
        ++pos_;
        r = Regex::Plus(std::move(r));
      } else if (c == '{') {
        ++pos_;
        ASSIGN_OR_RETURN(uint32_t min, ParseNumber());
        uint32_t max = min;
        if (Match(',')) {
          SkipWs();
          if (!AtEnd() && Peek() == '*') {
            ++pos_;
            max = kUnbounded;
          } else {
            ASSIGN_OR_RETURN(max, ParseNumber());
          }
        }
        if (!Match('}')) return Error("expected '}'");
        if (max != kUnbounded && max < min) {
          return Error("repeat with max < min");
        }
        r = Regex::Repeat(std::move(r), min, max);
      } else {
        return r;
      }
    }
  }

  Result<uint32_t> ParseNumber() {
    SkipWs();
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Error("expected number");
    }
    uint64_t value = 0;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      value = value * 10 + (input_[pos_++] - '0');
      if (value > 1000000) return Error("repeat bound too large");
    }
    return static_cast<uint32_t>(value);
  }

  Result<RegexPtr> ParsePrimary() {
    SkipWs();
    if (AtEnd()) return Error("expected expression");
    if (Peek() == '(') {
      ++pos_;
      SkipWs();
      if (!AtEnd() && Peek() == ')') {  // '()' = ε
        ++pos_;
        return Regex::Epsilon();
      }
      ASSIGN_OR_RETURN(RegexPtr inner, ParseAlt());
      if (!Match(')')) return Error("expected ')'");
      return inner;
    }
    if (!IsNameStartChar(Peek())) {
      return Error("expected name or '('");
    }
    size_t begin = pos_;
    ++pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    Symbol sym = alphabet_->Intern(input_.substr(begin, pos_ - begin));
    return Regex::Sym(sym);
  }

  std::string_view input_;
  Alphabet* alphabet_;
  size_t pos_ = 0;
};

}  // namespace

Result<RegexPtr> ParseRegex(std::string_view input, Alphabet* alphabet) {
  return RegexParser(input, alphabet).Parse();
}

}  // namespace xmlreval::automata
