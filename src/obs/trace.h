// Phase-level trace spans with a bounded ring-buffer sink.
//
// A Span is an RAII scope marker: construction stamps a start time and
// pushes the span onto a thread-local active-span stack; destruction pops
// it and appends one COMPLETE event (name, ts, dur, tid, depth, up to four
// integer args) to the process-wide TraceSink ring buffer. The sink is
// bounded — a fixed capacity set up front; when full, the oldest events
// are overwritten and counted as dropped — so tracing can stay on in a
// serving process without unbounded growth.
//
// Export is Chrome trace-event JSON ("ph":"X" complete events), loadable
// directly in Perfetto / chrome://tracing. RAII construction guarantees
// exported spans are balanced: a child's [ts, ts+dur] interval nests
// inside its parent's on the same tid.
//
// Cost discipline: span names and arg keys must be string LITERALS (the
// sink stores the pointers); a disabled span is one relaxed load in the
// constructor and a branch in the destructor — no clock reads, no
// allocation, nothing on the ring. Building with -DXMLREVAL_OBS_DISABLED
// compiles spans away entirely.

#ifndef XMLREVAL_OBS_TRACE_H_
#define XMLREVAL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace xmlreval::obs {

/// Runtime switch for span recording (default off). One relaxed load.
bool TraceEnabled();
void SetTraceEnabled(bool enabled);

/// Microseconds since the process trace epoch (steady clock).
uint64_t TraceNowMicros();

class TraceSink {
 public:
  static constexpr size_t kMaxArgs = 4;

  struct Event {
    const char* name = nullptr;  // string literal
    uint64_t ts_us = 0;          // start, relative to the trace epoch
    uint64_t dur_us = 0;
    uint32_t tid = 0;   // dense per-thread id (first-use order)
    uint32_t depth = 0; // nesting depth on its thread at record time
    uint32_t num_args = 0;
    const char* arg_keys[kMaxArgs] = {};  // string literals
    uint64_t arg_values[kMaxArgs] = {};
  };

  static TraceSink& Global();

  /// Appends one complete event; overwrites the oldest when full.
  void Record(const Event& event);

  /// Events currently buffered, oldest first.
  std::vector<Event> Events() const;
  size_t size() const;
  /// Events overwritten since the last Clear.
  uint64_t dropped() const;

  /// Drops all buffered events and resets the dropped counter.
  void Clear();
  /// Resizes the ring (clears it). Default capacity: 65536 events.
  void SetCapacity(size_t capacity);

  /// Chrome trace-event JSON: {"traceEvents":[...]}; events sorted by
  /// (ts, -dur) so parents precede children and timestamps are monotone.
  std::string ExportChromeJson() const;

  /// Dense id of the calling thread (assigned on first use).
  static uint32_t CurrentThreadId();

 private:
  TraceSink();

  mutable std::mutex mutex_;
  std::vector<Event> ring_;
  size_t capacity_;
  size_t head_ = 0;   // next write slot
  size_t count_ = 0;  // valid events (≤ capacity_)
  uint64_t dropped_ = 0;
};

class Span {
 public:
  /// `name` must be a string literal (stored by pointer).
  explicit Span(const char* name) {
#ifndef XMLREVAL_OBS_DISABLED
    if (TraceEnabled()) Start(name);
#else
    (void)name;
#endif
  }

  ~Span() {
#ifndef XMLREVAL_OBS_DISABLED
    if (enabled_) Finish();
#endif
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is live and recording (trace switch was on at
  /// construction). Lets callers skip arg computation when off.
  bool enabled() const {
#ifndef XMLREVAL_OBS_DISABLED
    return enabled_;
#else
    return false;
#endif
  }

  /// Attaches an integer arg (key must be a string literal; at most
  /// TraceSink::kMaxArgs are kept). No-op on a disabled span.
  void Arg(const char* key, uint64_t value) {
#ifndef XMLREVAL_OBS_DISABLED
    if (enabled_ && event_.num_args < TraceSink::kMaxArgs) {
      event_.arg_keys[event_.num_args] = key;
      event_.arg_values[event_.num_args] = value;
      ++event_.num_args;
    }
#else
    (void)key;
    (void)value;
#endif
  }

 private:
#ifndef XMLREVAL_OBS_DISABLED
  void Start(const char* name);
  void Finish();

  bool enabled_ = false;
  Span* parent_ = nullptr;  // thread-local active-span stack link
  TraceSink::Event event_;
#endif
};

}  // namespace xmlreval::obs

#endif  // XMLREVAL_OBS_TRACE_H_
