// Phase-level trace spans with request-scoped causal context and a
// bounded ring-buffer sink.
//
// A Span is an RAII scope marker: construction stamps a start time and
// pushes the span onto a thread-local active-span stack; destruction pops
// it and appends one COMPLETE event (name, ts, dur, tid, depth, up to four
// integer args) to the process-wide TraceSink ring buffer. The sink is
// bounded — a fixed capacity set up front; when full, the oldest events
// are overwritten and counted as dropped — so tracing can stay on in a
// serving process without unbounded growth.
//
// CAUSAL CONTEXT. Every thread carries a TraceContext: the id of the
// request it is currently working for (trace_id) plus an optional pending
// inbound flow edge. A RequestScope at a service entry point mints a fresh
// trace_id (or adopts the caller's — batch items nest the per-op calls
// under one id); every span started while the scope is live is stamped
// with that id, so all spans of one request are joinable even across
// threads. Cross-thread handoffs — Executor::Submit task wrappers,
// ParallelCastValidator donations, the batch queue — carry the context
// explicitly: the spawner calls ForkFlow(name) (which emits a Chrome flow
// START event, "ph":"s", inside the spawning span), ships the returned
// context with the task, and the worker installs it with
// ScopedTraceContext; the first span the task opens then emits the
// matching flow FINISH event ("ph":"f","bp":"e"), so Perfetto renders an
// arrow from the spawning span to the stolen task. FlowStep emits an
// intermediate "ph":"t" step (the batch pipeline marks queue pickup).
//
// TAIL SAMPLING. With TraceSink tail sampling enabled, events that carry
// a trace_id are STAGED per request instead of entering the ring; when the
// request finishes the owner calls ResolveTrace(trace_id, keep): kept
// traces (slow or failed requests — the caller decides, typically via
// Histogram::IsTailValue) move to the ring wholesale, dropped ones are
// discarded and counted. The ring then holds only exemplar-worthy
// requests end to end instead of a uniform suffix of everything.
//
// Export is Chrome trace-event JSON ("ph":"X" complete events plus
// "s"/"t"/"f" flow events), loadable directly in Perfetto /
// chrome://tracing. RAII construction guarantees exported spans are
// balanced: a child's [ts, ts+dur] interval nests inside its parent's on
// the same tid.
//
// Cost discipline: span names and arg keys must be string LITERALS (the
// sink stores the pointers); a disabled span is one relaxed load in the
// constructor and a branch in the destructor — no clock reads, no
// allocation, nothing on the ring. Spans also feed the crash-safe
// FlightRecorder when it is enabled (same single relaxed load: both
// consumers share one recording mask). Building with
// -DXMLREVAL_OBS_DISABLED compiles spans away entirely.

#ifndef XMLREVAL_OBS_TRACE_H_
#define XMLREVAL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace xmlreval::obs {

/// Runtime switch for span recording into the TraceSink (default off).
bool TraceEnabled();
void SetTraceEnabled(bool enabled);

/// Bitmask of active span consumers; one relaxed load covers both.
inline constexpr uint32_t kSpanTraceBit = 1u;   // TraceSink ring
inline constexpr uint32_t kSpanFlightBit = 2u;  // FlightRecorder ring
uint32_t SpanMask();

namespace internal {
/// Flips one consumer bit in the span mask (pins the trace epoch when
/// turning a bit on). The FlightRecorder uses this; SetTraceEnabled is
/// the public face for the trace bit.
void SetSpanMaskBit(uint32_t bit, bool enabled);
}  // namespace internal

/// Microseconds since the process trace epoch (steady clock).
uint64_t TraceNowMicros();

// ---------------------------------------------------------------- context

/// Causal identity carried across threads with a unit of work.
struct TraceContext {
  /// Request the work belongs to; 0 = no request scope.
  uint64_t trace_id = 0;
  /// Pending inbound flow edge minted by ForkFlow; consumed (as a Chrome
  /// flow-finish event) by the first span the receiving task opens.
  uint64_t flow_id = 0;
  /// Names the flow edge; must match the ForkFlow call (string literal).
  const char* flow_name = nullptr;
};

/// Process-unique nonzero request id; 0 when no span consumer is active
/// (ids are only meaningful while something records them).
uint64_t NewTraceId();

/// The calling thread's current context (no pending flow).
TraceContext CurrentTraceContext();

/// Installs `ctx` on the calling thread for the object's lifetime and
/// restores the previous context on destruction. Workers install the
/// context shipped with a task before running it.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  uint64_t saved_trace_id_;
  uint64_t saved_flow_id_;
  const char* saved_flow_name_;
};

/// Request identity for a service entry point: adopts the thread's
/// current trace id when one is installed (a batch item's per-op calls
/// nest under the item's id), mints a fresh one otherwise. The scope that
/// MINTED the id owns the request end: its destructor resolves tail
/// sampling for the id — declare the scope BEFORE the request's spans so
/// they finish (and stage their events) first. The default verdict is
/// keep; a sampler calls set_keep with its decision before the scope
/// closes (typically: failed request, or latency in the histogram tail).
class RequestScope {
 public:
  RequestScope();
  /// Adopts an id minted ELSEWHERE (batch submission forked the flow
  /// before enqueuing) and owns its end: installs ctx.trace_id on this
  /// thread and resolves tail sampling at destruction. Owns nothing when
  /// ctx.trace_id is 0.
  explicit RequestScope(const TraceContext& ctx);
  ~RequestScope();
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  uint64_t trace_id() const { return trace_id_; }
  /// True when this scope minted the id (outermost request boundary).
  bool owns() const { return owns_; }
  /// Tail-sampling verdict applied at destruction (owner only).
  void set_keep(bool keep) { keep_ = keep; }

 private:
  uint64_t trace_id_ = 0;
  uint64_t saved_trace_id_ = 0;
  bool owns_ = false;
  bool keep_ = true;
};

/// Marks the current request keep-worthy from a scope that does NOT own
/// it (a nested entry point saw a failure or a tail-bucket latency). The
/// owning RequestScope on the same thread ORs the hint into its verdict
/// at destruction and clears it.
void HintKeepTrace();

/// Emits a Chrome flow START event ("ph":"s") on the calling thread —
/// inside whatever span is open, so the arrow originates there — and
/// returns the context to ship with the spawned task. `name` labels the
/// edge and must be a string literal. No-op (all-zero context, no event)
/// when tracing is off.
TraceContext ForkFlow(const char* name);

/// Emits a flow STEP event ("ph":"t") for `ctx`'s edge on the calling
/// thread (e.g. queue pickup, between enqueue and the handler span).
void FlowStep(const TraceContext& ctx);

// ------------------------------------------------------------------ sink

class TraceSink {
 public:
  static constexpr size_t kMaxArgs = 4;

  struct Event {
    const char* name = nullptr;  // string literal
    uint64_t ts_us = 0;          // start, relative to the trace epoch
    uint64_t dur_us = 0;
    uint64_t trace_id = 0;  // owning request; exported as args.trace_id
    uint64_t flow_id = 0;   // flow events: the edge id ("id" field)
    uint32_t tid = 0;   // dense per-thread id (first-use order)
    uint32_t depth = 0; // nesting depth on its thread at record time
    char ph = 'X';      // 'X' complete; 's'/'t'/'f' flow start/step/finish
    uint32_t num_args = 0;
    const char* arg_keys[kMaxArgs] = {};  // string literals
    uint64_t arg_values[kMaxArgs] = {};
  };

  static TraceSink& Global();

  /// Appends one event; overwrites the oldest when full. With tail
  /// sampling on, events carrying a trace_id are staged per request until
  /// ResolveTrace decides their fate.
  void Record(const Event& event);

  /// Tail-based sampling switch (default off). Enabling clears staged
  /// state; disabling discards whatever is still staged.
  void SetTailSampling(bool enabled);
  bool tail_sampling() const;

  /// Ends a staged request: keep moves its events into the ring in
  /// arrival order, drop discards them (counted in tail_dropped()).
  /// No-op for unknown ids or when tail sampling is off.
  void ResolveTrace(uint64_t trace_id, bool keep);

  /// Events currently buffered, oldest first (staged events excluded).
  std::vector<Event> Events() const;
  size_t size() const;
  /// Events overwritten in the ring since the last Clear.
  uint64_t dropped() const;
  /// Events discarded by tail sampling (dropped traces + staging caps).
  uint64_t tail_dropped() const;
  /// Events currently staged across all unresolved traces.
  size_t staged() const;

  /// Drops all buffered + staged events and resets the drop counters.
  void Clear();
  /// Resizes the ring (clears it). Default capacity: 65536 events.
  void SetCapacity(size_t capacity);

  /// Chrome trace-event JSON: {"traceEvents":[...]}; events sorted by
  /// (ts, -dur) so parents precede children and timestamps are monotone.
  std::string ExportChromeJson() const;

  /// Dense id of the calling thread (assigned on first use).
  static uint32_t CurrentThreadId();

 private:
  TraceSink();
  void RecordLocked(const Event& event);

  mutable std::mutex mutex_;
  std::vector<Event> ring_;
  size_t capacity_;
  size_t head_ = 0;   // next write slot
  size_t count_ = 0;  // valid events (≤ capacity_)
  uint64_t dropped_ = 0;

  // Tail sampling (all guarded by mutex_). Staging is bounded: at most
  // capacity_ events across all staged traces; overflow drops the event
  // and counts it in tail_dropped_.
  bool tail_sampling_ = false;
  std::unordered_map<uint64_t, std::vector<Event>> staged_;
  size_t staged_events_ = 0;
  uint64_t tail_dropped_ = 0;
};

class Span {
 public:
  /// `name` must be a string literal (stored by pointer).
  explicit Span(const char* name) {
#ifndef XMLREVAL_OBS_DISABLED
    if (uint32_t mask = SpanMask()) Start(name, mask);
#else
    (void)name;
#endif
  }

  ~Span() {
#ifndef XMLREVAL_OBS_DISABLED
    if (mask_ != 0) Finish();
#endif
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span records into the TraceSink (trace switch was on
  /// at construction). Lets callers skip arg computation when off.
  bool enabled() const {
#ifndef XMLREVAL_OBS_DISABLED
    return (mask_ & kSpanTraceBit) != 0;
#else
    return false;
#endif
  }

  /// Attaches an integer arg (key must be a string literal; at most
  /// TraceSink::kMaxArgs are kept). No-op on a disabled span.
  void Arg(const char* key, uint64_t value) {
#ifndef XMLREVAL_OBS_DISABLED
    if (enabled() && event_.num_args < TraceSink::kMaxArgs) {
      event_.arg_keys[event_.num_args] = key;
      event_.arg_values[event_.num_args] = value;
      ++event_.num_args;
    }
#else
    (void)key;
    (void)value;
#endif
  }

 private:
  friend size_t SnapshotActiveSpans(struct ActiveSpanInfo* out, size_t max);

#ifndef XMLREVAL_OBS_DISABLED
  void Start(const char* name, uint32_t mask);
  void Finish();

  uint32_t mask_ = 0;
  Span* parent_ = nullptr;  // thread-local active-span stack link
  TraceSink::Event event_;
#endif
};

/// One frame of the calling thread's open-span stack, innermost first.
/// Used by the FlightRecorder's crash dump: async-signal-safe to call on
/// the crashing thread (reads thread-locals and stack-allocated Spans).
struct ActiveSpanInfo {
  const char* name = nullptr;
  uint64_t ts_us = 0;
  uint64_t trace_id = 0;
};
size_t SnapshotActiveSpans(ActiveSpanInfo* out, size_t max);

}  // namespace xmlreval::obs

#endif  // XMLREVAL_OBS_TRACE_H_
