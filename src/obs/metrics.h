// Metrics registry — named counters, gauges, and log₂-bucket latency
// histograms for the validation serving stack.
//
// Design constraints (ISSUE 3 tentpole):
//   * Recording is lock-free: one relaxed atomic add per Counter::Add,
//     two per Histogram::Record (bucket + sum) plus a CAS max loop that
//     almost always exits on the first load. No strings, no maps, no
//     allocation on the record path.
//   * Metric OBJECTS are created once, on a cold path, through
//     MetricsRegistry::{counter,gauge,histogram} — a name + label lookup
//     under a shared_mutex. Callers cache the returned pointer; pointers
//     stay valid for the registry's lifetime (metrics are never removed).
//   * Labels carry the two dimensions the paper's serving story needs:
//     operation (validate / cast / cast_with_mods / batch) and the
//     (S, S') schema-pair key.
//   * Quantiles (p50/p90/p99) are DERIVED at snapshot time from the
//     log₂ bucket counts — nothing is sorted or sampled on the hot path.
//   * A process-wide runtime switch (SetEnabled, read with one relaxed
//     load) turns histogram recording off; plain counters always count —
//     they are part of the service's API contract (ValidationService::
//     Counters, RelationsCache::Stats) and cost one relaxed add.
//   * Compile-time escape hatch: building with -DXMLREVAL_OBS_DISABLED
//     turns Histogram::Record and the gauge/trace paths into empty
//     inlines so the validators' instrumented hot paths carry zero code.
//
// Rendering: MetricsSnapshot serializes to Prometheus text exposition
// format and to JSON (the latter is what `xmlreval stats` and the CI
// smoke job read back through common/json).

#ifndef XMLREVAL_OBS_METRICS_H_
#define XMLREVAL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace xmlreval::obs {

/// Process-wide runtime switch for histogram/gauge/trace recording.
/// Defaults to enabled; benchmarks measuring the uninstrumented hot path
/// call SetEnabled(false). One relaxed load per check.
bool Enabled();
void SetEnabled(bool enabled);

/// One label dimension: ordered (key, value) pairs, e.g.
/// {{"op", "cast"}, {"pair", "po.v1->po.v2"}}. Canonicalized (sorted by
/// key) when a metric is created, so label order at call sites is free.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  /// Monotonic add; always compiled in, always counts (see header).
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) {
#ifndef XMLREVAL_OBS_DISABLED
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t n = 1) {
#ifndef XMLREVAL_OBS_DISABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void Sub(int64_t n = 1) { Add(-n); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// A concrete request pinned to the histogram bucket its latency landed
/// in — p99 becomes clickable: the trace_id resolves to a full trace in
/// the TraceSink (kept there by tail sampling for exactly these requests).
struct Exemplar {
  uint64_t trace_id = 0;
  uint64_t value = 0;  // the recorded observation (latency, µs)
  uint64_t node_count = 0;
  std::string pair;           // schema-pair label, e.g. "po.v1->po.v2"
  const char* verdict = "";   // string literal: valid/invalid/error
};

/// Fixed-bucket log₂ histogram. Bucket i counts values whose bit width is
/// i (bucket 0: value == 0), i.e. values in [2^(i-1), 2^i - 1]; the last
/// bucket absorbs everything wider. Suited to latencies in microseconds:
/// 40 buckets cover 0 .. ~2^39 us (~6 days) at ≤ 2x resolution.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  /// Upper bound (inclusive) of bucket i: 0, 1, 3, 7, ..., 2^i - 1.
  static uint64_t BucketBound(size_t i) {
    return i == 0 ? 0 : (i >= 64 ? ~uint64_t{0} : (uint64_t{1} << i) - 1);
  }

  static size_t BucketIndex(uint64_t value) {
    size_t width = value == 0 ? 0 : static_cast<size_t>(64 - __builtin_clzll(value));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Lock-free record: one relaxed add to the bucket, one to the running
  /// sum, and a relaxed CAS loop for the max (rarely more than one step).
  /// Gated on the runtime switch; compiled out under XMLREVAL_OBS_DISABLED.
  void Record(uint64_t value) {
#ifndef XMLREVAL_OBS_DISABLED
    if (!Enabled()) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
#else
    (void)value;
#endif
  }

  uint64_t Count() const;
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }

  /// True when `value` lands in the top two occupied log₂ buckets of the
  /// distribution seen so far (bucket of value + 1 ≥ bucket of max) —
  /// the tail-sampling keep criterion. Cheap: one relaxed load + two clz.
  bool IsTailValue(uint64_t value) const {
    return BucketIndex(value) + 1 >= BucketIndex(Max());
  }

  /// Pins `exemplar` to the bucket `value` falls in (latest wins; cold
  /// path, per-histogram mutex). Call only for requests whose trace was
  /// KEPT, so the trace_id is resolvable.
  void RecordExemplar(uint64_t value, Exemplar exemplar);

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};

  // Exemplar slots, one per bucket, filled lazily (cold path only).
  mutable std::mutex exemplar_mutex_;
  std::unordered_map<size_t, Exemplar> exemplars_;
};

// ---------------------------------------------------------------- snapshot

struct CounterSnapshot {
  std::string name;
  Labels labels;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  Labels labels;
  int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  Labels labels;
  std::array<uint64_t, Histogram::kBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  /// (bucket index, exemplar) sorted by bucket; JSON export only.
  std::vector<std::pair<size_t, Exemplar>> exemplars;

  double Mean() const { return count == 0 ? 0.0 : double(sum) / double(count); }
  /// Quantile estimate (q in [0, 1]), linearly interpolated inside the
  /// log₂ bucket that crosses the target rank.
  double Quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// First entry matching name (+ label subset), or nullptr.
  const CounterSnapshot* FindCounter(std::string_view name,
                                     const Labels& labels = {}) const;
  const GaugeSnapshot* FindGauge(std::string_view name,
                                 const Labels& labels = {}) const;
  const HistogramSnapshot* FindHistogram(std::string_view name,
                                         const Labels& labels = {}) const;

  /// Prometheus text exposition format (counters as *_total families,
  /// histograms with cumulative le="..." buckets, +Inf, _sum, _count).
  std::string ToPrometheusText() const;
  /// JSON rendering, readable back via common/json (see `xmlreval stats`).
  std::string ToJson() const;
};

// ---------------------------------------------------------------- registry

/// A set of named metrics with one consistent snapshot path. Instantiable
/// so each ValidationService (and each test) gets an isolated namespace;
/// Default() is the process-wide registry for code without a service.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  /// Find-or-create; the same (name, labels) always returns the same
  /// pointer, valid for the registry's lifetime. Cold path (shared-lock
  /// probe, exclusive insert on first use) — cache the pointer.
  Counter* counter(std::string_view name, const Labels& labels = {});
  Gauge* gauge(std::string_view name, const Labels& labels = {});
  Histogram* histogram(std::string_view name, const Labels& labels = {});

  /// Registers a callback run at the START of every Snapshot(), before
  /// values are read — the hook where owners publish derived state
  /// (queue-depth high-water marks, trace-sink health gauges) so each
  /// exposition interval sees it fresh. Callbacks must not call
  /// Snapshot() and never unregister (registry-lifetime).
  void OnSnapshot(std::function<void()> callback);

  MetricsSnapshot Snapshot() const;

 private:
  template <typename T>
  T* FindOrCreate(std::unordered_map<std::string, std::unique_ptr<T>>& map,
                  std::string_view name, const Labels& labels);

  struct Meta {
    std::string name;
    Labels labels;
  };

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::unordered_map<const void*, Meta> meta_;

  mutable std::mutex callbacks_mutex_;
  std::vector<std::function<void()>> snapshot_callbacks_;
};

}  // namespace xmlreval::obs

#endif  // XMLREVAL_OBS_METRICS_H_
