// Crash-safe flight recorder: a pre-allocated, async-signal-safe ring of
// the most recent finished spans per thread, plus a registered-counter
// snapshot, dumpable to a file from SIGSEGV/SIGABRT handlers (and on
// demand via SIGUSR2 or DumpToFile).
//
// The TraceSink answers "what did this request do?" for requests that
// END; it is useless for the request that takes the process down with it
// (mutex-guarded ring, heap-allocated staging). The flight recorder is
// the complement: everything it touches after Enable() is pre-allocated
// and written/read exclusively through lock-free atomic field stores, so
// a signal handler can serialize it with nothing but write(2).
//
// Recording: when the flight bit of the span mask is set, Span::Finish
// appends {name, ts, dur, trace_id} to the calling thread's ring (slot =
// dense thread id mod kMaxThreads; rings are fixed arrays of records with
// per-field std::atomic, so a handler interrupting a writer sees at worst
// one half-updated record, never a torn pointer or UB). Span names are
// string literals, so the pointers stored here are valid in the handler.
//
// Dumping is async-signal-safe by construction: open/write/close only, a
// hand-rolled integer/string JSON writer (no snprintf, no allocation,
// no locks), counters read via relaxed loads from pointers registered up
// front, and the crashing thread's open-span stack captured through
// SnapshotActiveSpans (walks stack-allocated Spans via a thread-local).
// The resulting file is ordinary JSON — see DESIGN.md §obs for the
// layout — so post-mortem tooling and tests parse it with any JSON
// reader.
//
// Fatal signals re-raise after dumping (SA_RESETHAND restores the
// default disposition first), so exit status and core dumps are
// unchanged; SIGUSR2 dumps and returns.

#ifndef XMLREVAL_OBS_FLIGHT_RECORDER_H_
#define XMLREVAL_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace xmlreval::obs {

class Counter;

class FlightRecorder {
 public:
  /// Rings are indexed by dense thread id modulo this; threads beyond it
  /// share slots (benign interleaving, never data loss for ≤64 threads).
  static constexpr size_t kMaxThreads = 64;
  static constexpr size_t kMaxCounters = 64;

  /// One finished span. Per-field atomics: a handler racing the writer
  /// reads a consistent-enough record without locks or UB.
  struct Record {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> ts_us{0};
    std::atomic<uint64_t> dur_us{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint32_t> tid{0};
  };

  static FlightRecorder& Global();

  /// Pre-allocates kMaxThreads rings of `per_thread_capacity` records and
  /// turns the span-mask flight bit on. Idempotent while enabled; the
  /// ring memory is never freed once published (handlers may race a
  /// Disable), so capacity is fixed by the first Enable.
  void Enable(size_t per_thread_capacity = 256);
  /// Clears the flight bit; rings stay allocated (and dumpable).
  void Disable();
  bool enabled() const;

  /// Appends to the calling thread's ring. No-op before Enable.
  void RecordSpan(const char* name, uint64_t ts_us, uint64_t dur_us,
                  uint64_t trace_id);

  /// Registers a counter to include in dumps. `name` must be a string
  /// literal; the counter must outlive the process's last dump. At most
  /// kMaxCounters; extras are silently ignored.
  void RegisterCounter(const char* name, const Counter* counter);

  /// Serializes rings + counters + this thread's open spans as JSON.
  /// Async-signal-safe. Returns false when the fd/path can't be written.
  bool DumpToFd(int fd, const char* reason) const;
  bool DumpToFile(const char* path, const char* reason) const;

  /// Records currently held in `slot`'s ring (≤ capacity). For gauges.
  size_t SlotOccupancy(size_t slot) const;
  size_t per_thread_capacity() const;
  /// Dumps completed since Enable (any trigger).
  uint64_t dump_count() const;

 private:
  FlightRecorder() = default;

  std::atomic<Record*> records_{nullptr};  // kMaxThreads * capacity_
  std::atomic<size_t> capacity_{0};
  std::atomic<uint64_t> heads_[kMaxThreads] = {};  // monotonic per slot

  struct CounterEntry {
    // counter is stored before name; a nonnull name marks the entry live.
    std::atomic<const char*> name{nullptr};
    std::atomic<const Counter*> counter{nullptr};
  };
  CounterEntry counters_[kMaxCounters];
  std::atomic<size_t> num_counters_{0};
  mutable std::atomic<uint64_t> dump_count_{0};
};

/// Installs SIGSEGV/SIGABRT handlers (dump to `dump_path`, then re-raise
/// with default disposition) and a SIGUSR2 on-demand dump handler.
/// `dump_path` is copied into a fixed buffer (truncated at 255 bytes).
void InstallCrashHandlers(const char* dump_path);

/// Span::Finish calls this when the span-mask flight bit is set.
void FlightRecordSpan(const char* name, uint64_t ts_us, uint64_t dur_us,
                      uint64_t trace_id);

}  // namespace xmlreval::obs

#endif  // XMLREVAL_OBS_FLIGHT_RECORDER_H_
