#include "obs/flight_recorder.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlreval::obs {

namespace {

// Buffered async-signal-safe writer: write(2) + hand-rolled formatting.
// Nothing here allocates, locks, or calls into stdio.
struct SafeWriter {
  int fd;
  char buf[512];
  size_t len = 0;
  bool ok = true;

  explicit SafeWriter(int fd) : fd(fd) {}

  void Flush() {
    size_t off = 0;
    while (ok && off < len) {
      ssize_t n = ::write(fd, buf + off, len - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      off += static_cast<size_t>(n);
    }
    len = 0;
  }

  void Char(char c) {
    if (len == sizeof(buf)) Flush();
    buf[len++] = c;
  }

  void Raw(const char* s) {
    for (; *s; ++s) Char(*s);
  }

  /// JSON string literal. Names here are compile-time literals, but
  /// escape defensively — the cost is per-character anyway.
  void Str(const char* s) {
    Char('"');
    for (; s && *s; ++s) {
      unsigned char c = static_cast<unsigned char>(*s);
      if (c == '"' || c == '\\') {
        Char('\\');
        Char(static_cast<char>(c));
      } else if (c < 0x20) {
        Char('\\');
        Char('u');
        Char('0');
        Char('0');
        const char* hex = "0123456789abcdef";
        Char(hex[c >> 4]);
        Char(hex[c & 0xf]);
      } else {
        Char(static_cast<char>(c));
      }
    }
    Char('"');
  }

  void U64(uint64_t v) {
    char digits[20];
    size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) Char(digits[--n]);
  }
};

char g_dump_path[256] = "flight_recorder.json";

void CrashHandler(int sig) {
  const char* reason = sig == SIGSEGV  ? "SIGSEGV"
                       : sig == SIGABRT ? "SIGABRT"
                                        : "signal";
  FlightRecorder::Global().DumpToFile(g_dump_path, reason);
  // SA_RESETHAND restored the default disposition; re-raise so the
  // process dies with the original signal (exit status, core dump).
  raise(sig);
}

void OnDemandHandler(int) {
  FlightRecorder::Global().DumpToFile(g_dump_path, "SIGUSR2");
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Enable(size_t per_thread_capacity) {
  if (per_thread_capacity == 0) per_thread_capacity = 1;
  if (records_.load(std::memory_order_acquire) == nullptr) {
    Record* records = new Record[kMaxThreads * per_thread_capacity]();
    capacity_.store(per_thread_capacity, std::memory_order_relaxed);
    records_.store(records, std::memory_order_release);
  }
  internal::SetSpanMaskBit(kSpanFlightBit, true);
}

void FlightRecorder::Disable() {
  internal::SetSpanMaskBit(kSpanFlightBit, false);
}

bool FlightRecorder::enabled() const {
  return (SpanMask() & kSpanFlightBit) != 0;
}

void FlightRecorder::RecordSpan(const char* name, uint64_t ts_us,
                                uint64_t dur_us, uint64_t trace_id) {
  Record* records = records_.load(std::memory_order_acquire);
  if (records == nullptr) return;
  size_t capacity = capacity_.load(std::memory_order_relaxed);
  size_t slot = TraceSink::CurrentThreadId() % kMaxThreads;
  uint64_t index =
      heads_[slot].fetch_add(1, std::memory_order_relaxed) % capacity;
  Record& record = records[slot * capacity + index];
  record.name.store(name, std::memory_order_relaxed);
  record.ts_us.store(ts_us, std::memory_order_relaxed);
  record.dur_us.store(dur_us, std::memory_order_relaxed);
  record.trace_id.store(trace_id, std::memory_order_relaxed);
  record.tid.store(TraceSink::CurrentThreadId(), std::memory_order_relaxed);
}

void FlightRecorder::RegisterCounter(const char* name, const Counter* counter) {
  size_t index = num_counters_.fetch_add(1, std::memory_order_relaxed);
  if (index >= kMaxCounters) return;
  counters_[index].counter.store(counter, std::memory_order_relaxed);
  // Name last: a nonnull name marks the entry live for dumpers.
  counters_[index].name.store(name, std::memory_order_release);
}

size_t FlightRecorder::SlotOccupancy(size_t slot) const {
  if (slot >= kMaxThreads) return 0;
  size_t capacity = capacity_.load(std::memory_order_relaxed);
  if (capacity == 0) return 0;
  uint64_t head = heads_[slot].load(std::memory_order_relaxed);
  return head < capacity ? static_cast<size_t>(head) : capacity;
}

size_t FlightRecorder::per_thread_capacity() const {
  return capacity_.load(std::memory_order_relaxed);
}

uint64_t FlightRecorder::dump_count() const {
  return dump_count_.load(std::memory_order_relaxed);
}

bool FlightRecorder::DumpToFd(int fd, const char* reason) const {
  SafeWriter w(fd);
  w.Raw("{\"flight_recorder\":{\"reason\":");
  w.Str(reason);
  w.Raw(",\"ts_us\":");
  w.U64(TraceNowMicros());
  w.Raw(",\"counters\":[");
  size_t num_counters = num_counters_.load(std::memory_order_relaxed);
  if (num_counters > kMaxCounters) num_counters = kMaxCounters;
  bool first = true;
  for (size_t i = 0; i < num_counters; ++i) {
    const char* name = counters_[i].name.load(std::memory_order_acquire);
    const Counter* counter =
        counters_[i].counter.load(std::memory_order_relaxed);
    if (name == nullptr || counter == nullptr) continue;
    if (!first) w.Char(',');
    first = false;
    w.Raw("{\"name\":");
    w.Str(name);
    w.Raw(",\"value\":");
    w.U64(counter->Value());
    w.Char('}');
  }
  // Open spans of the DUMPING thread (the crashing one, in a handler):
  // what the in-flight request was doing at the moment of death.
  w.Raw("],\"active_spans\":[");
  ActiveSpanInfo active[32];
  size_t num_active = SnapshotActiveSpans(active, 32);
  for (size_t i = 0; i < num_active; ++i) {
    if (i != 0) w.Char(',');
    w.Raw("{\"name\":");
    w.Str(active[i].name);
    w.Raw(",\"ts_us\":");
    w.U64(active[i].ts_us);
    w.Raw(",\"trace_id\":");
    w.U64(active[i].trace_id);
    w.Char('}');
  }
  w.Raw("],\"threads\":[");
  Record* records = records_.load(std::memory_order_acquire);
  size_t capacity = capacity_.load(std::memory_order_relaxed);
  bool first_slot = true;
  for (size_t slot = 0; records != nullptr && slot < kMaxThreads; ++slot) {
    uint64_t head = heads_[slot].load(std::memory_order_relaxed);
    if (head == 0) continue;
    if (!first_slot) w.Char(',');
    first_slot = false;
    w.Raw("{\"slot\":");
    w.U64(slot);
    w.Raw(",\"events\":[");
    uint64_t count = head < capacity ? head : capacity;
    uint64_t start = head < capacity ? 0 : head % capacity;
    for (uint64_t i = 0; i < count; ++i) {
      const Record& record =
          records[slot * capacity + (start + i) % capacity];
      const char* name = record.name.load(std::memory_order_relaxed);
      if (i != 0) w.Char(',');
      w.Raw("{\"name\":");
      w.Str(name != nullptr ? name : "?");
      w.Raw(",\"ts_us\":");
      w.U64(record.ts_us.load(std::memory_order_relaxed));
      w.Raw(",\"dur_us\":");
      w.U64(record.dur_us.load(std::memory_order_relaxed));
      w.Raw(",\"trace_id\":");
      w.U64(record.trace_id.load(std::memory_order_relaxed));
      w.Raw(",\"tid\":");
      w.U64(record.tid.load(std::memory_order_relaxed));
      w.Char('}');
    }
    w.Raw("]}");
  }
  w.Raw("]}}\n");
  w.Flush();
  if (w.ok) dump_count_.fetch_add(1, std::memory_order_relaxed);
  return w.ok;
}

bool FlightRecorder::DumpToFile(const char* path, const char* reason) const {
  int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  bool ok = DumpToFd(fd, reason);
  ::close(fd);
  return ok;
}

void InstallCrashHandlers(const char* dump_path) {
  if (dump_path != nullptr) {
    strncpy(g_dump_path, dump_path, sizeof(g_dump_path) - 1);
    g_dump_path[sizeof(g_dump_path) - 1] = '\0';
  }
  // Touch the singletons now: static-local initialization is not
  // async-signal-safe, so it must happen before a handler can fire.
  FlightRecorder::Global();
  TraceSink::CurrentThreadId();

  struct sigaction fatal;
  memset(&fatal, 0, sizeof(fatal));
  fatal.sa_handler = CrashHandler;
  fatal.sa_flags = SA_RESETHAND;
  sigemptyset(&fatal.sa_mask);
  sigaction(SIGSEGV, &fatal, nullptr);
  sigaction(SIGABRT, &fatal, nullptr);

  struct sigaction on_demand;
  memset(&on_demand, 0, sizeof(on_demand));
  on_demand.sa_handler = OnDemandHandler;
  on_demand.sa_flags = SA_RESTART;
  sigemptyset(&on_demand.sa_mask);
  sigaction(SIGUSR2, &on_demand, nullptr);
}

void FlightRecordSpan(const char* name, uint64_t ts_us, uint64_t dur_us,
                      uint64_t trace_id) {
  FlightRecorder::Global().RecordSpan(name, ts_us, dur_us, trace_id);
}

}  // namespace xmlreval::obs
