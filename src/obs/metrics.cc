#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "common/json.h"

namespace xmlreval::obs {

namespace {

std::atomic<bool> g_enabled{true};

/// Canonical map key: name + sorted labels, e.g. `lat|op=cast|pair=a->b`.
std::string CanonicalKey(std::string_view name, const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  for (const auto& [k, v] : sorted) {
    key += '|';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

/// True when every label in `want` appears in `have`.
bool LabelsMatch(const Labels& have, const Labels& want) {
  for (const auto& w : want) {
    if (std::find(have.begin(), have.end(), w) == have.end()) return false;
  }
  return true;
}

std::string PrometheusLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += json::Escape(v);
    out += '"';
  }
  out += '}';
  return out;
}

/// Same but with extra room for an `le` label (histogram buckets).
std::string PrometheusLabelsWithLe(const Labels& labels,
                                   const std::string& le) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += k;
    out += "=\"";
    out += json::Escape(v);
    out += "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

void AppendJsonLabels(std::string& out, const Labels& labels) {
  out += "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"' + json::Escape(k) + "\":\"" + json::Escape(v) + '"';
  }
  out += '}';
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  uint64_t count = 0;
  for (const auto& bucket : buckets_) {
    count += bucket.load(std::memory_order_relaxed);
  }
  return count;
}

void Histogram::RecordExemplar(uint64_t value, Exemplar exemplar) {
#ifndef XMLREVAL_OBS_DISABLED
  if (!Enabled()) return;
  std::lock_guard lock(exemplar_mutex_);
  exemplars_[BucketIndex(value)] = std::move(exemplar);
#else
  (void)value;
  (void)exemplar;
#endif
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation (1-based), then walk the buckets.
  double rank = q * double(count);
  if (rank < 1) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    uint64_t next = cumulative + buckets[i];
    if (double(next) >= rank) {
      // Interpolate within [lower, upper] of this log₂ bucket.
      double lower = i == 0 ? 0.0 : double(Histogram::BucketBound(i - 1) + 1);
      double upper = double(Histogram::BucketBound(i));
      double frac = (rank - double(cumulative)) / double(buckets[i]);
      double value = lower + frac * (upper - lower);
      // Never report beyond the observed max (the last bucket is open).
      return max > 0 ? std::min(value, double(max)) : value;
    }
    cumulative = next;
  }
  return double(max);
}

const CounterSnapshot* MetricsSnapshot::FindCounter(std::string_view name,
                                                    const Labels& labels) const {
  for (const auto& c : counters) {
    if (c.name == name && LabelsMatch(c.labels, labels)) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::FindGauge(std::string_view name,
                                                const Labels& labels) const {
  for (const auto& g : gauges) {
    if (g.name == name && LabelsMatch(g.labels, labels)) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name, const Labels& labels) const {
  for (const auto& h : histograms) {
    if (h.name == name && LabelsMatch(h.labels, labels)) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  char buf[128];
  std::string last_type_line;
  auto type_line = [&](const std::string& name, const char* type) {
    std::string line = "# TYPE " + name + " " + type + "\n";
    if (line != last_type_line) {
      out += line;
      last_type_line = line;
    }
  };
  for (const auto& c : counters) {
    type_line(c.name, "counter");
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(c.value));
    out += c.name + PrometheusLabels(c.labels) + buf;
  }
  for (const auto& g : gauges) {
    type_line(g.name, "gauge");
    std::snprintf(buf, sizeof(buf), " %lld\n",
                  static_cast<long long>(g.value));
    out += g.name + PrometheusLabels(g.labels) + buf;
  }
  for (const auto& h : histograms) {
    type_line(h.name, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      if (h.buckets[i] == 0 && i + 1 < h.buckets.size()) continue;
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(
                        Histogram::BucketBound(i)));
      out += h.name + "_bucket" + PrometheusLabelsWithLe(h.labels, buf);
      std::snprintf(buf, sizeof(buf), " %llu\n",
                    static_cast<unsigned long long>(cumulative));
      out += buf;
    }
    out += h.name + "_bucket" + PrometheusLabelsWithLe(h.labels, "+Inf");
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(h.count));
    out += buf;
    out += h.name + "_sum" + PrometheusLabels(h.labels);
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(h.sum));
    out += buf;
    out += h.name + "_count" + PrometheusLabels(h.labels);
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(h.count));
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": [";
  char buf[160];
  bool first = true;
  for (const auto& c : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + json::Escape(c.name) + "\",";
    AppendJsonLabels(out, c.labels);
    std::snprintf(buf, sizeof(buf), ",\"value\":%llu}",
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  out += "\n  ],\n  \"gauges\": [";
  first = true;
  for (const auto& g : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + json::Escape(g.name) + "\",";
    AppendJsonLabels(out, g.labels);
    std::snprintf(buf, sizeof(buf), ",\"value\":%lld}",
                  static_cast<long long>(g.value));
    out += buf;
  }
  out += "\n  ],\n  \"histograms\": [";
  first = true;
  for (const auto& h : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + json::Escape(h.name) + "\",";
    AppendJsonLabels(out, h.labels);
    std::snprintf(
        buf, sizeof(buf),
        ",\"count\":%llu,\"sum\":%llu,\"max\":%llu,\"mean\":%.6g,"
        "\"p50\":%.6g,\"p90\":%.6g,\"p99\":%.6g,",
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum),
        static_cast<unsigned long long>(h.max), h.Mean(), h.Quantile(0.50),
        h.Quantile(0.90), h.Quantile(0.99));
    out += buf;
    out += "\"buckets\":[";
    // Sparse rendering: [bound, count] pairs for non-empty buckets only.
    bool first_bucket = true;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      std::snprintf(buf, sizeof(buf), "[%llu,%llu]",
                    static_cast<unsigned long long>(Histogram::BucketBound(i)),
                    static_cast<unsigned long long>(h.buckets[i]));
      out += buf;
    }
    out += ']';
    if (!h.exemplars.empty()) {
      out += ",\"exemplars\":[";
      bool first_exemplar = true;
      for (const auto& [bucket, exemplar] : h.exemplars) {
        if (!first_exemplar) out += ',';
        first_exemplar = false;
        std::snprintf(
            buf, sizeof(buf),
            "{\"bucket\":%llu,\"trace_id\":%llu,\"value\":%llu,"
            "\"node_count\":%llu,",
            static_cast<unsigned long long>(Histogram::BucketBound(bucket)),
            static_cast<unsigned long long>(exemplar.trace_id),
            static_cast<unsigned long long>(exemplar.value),
            static_cast<unsigned long long>(exemplar.node_count));
        out += buf;
        out += "\"pair\":\"" + json::Escape(exemplar.pair) + "\",";
        out += "\"verdict\":\"" + json::Escape(exemplar.verdict) + "\"}";
      }
      out += ']';
    }
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

template <typename T>
T* MetricsRegistry::FindOrCreate(
    std::unordered_map<std::string, std::unique_ptr<T>>& map,
    std::string_view name, const Labels& labels) {
  std::string key = CanonicalKey(name, labels);
  {
    std::shared_lock lock(mutex_);
    auto it = map.find(key);
    if (it != map.end()) return it->second.get();
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = map.try_emplace(key, nullptr);
  if (inserted) {
    it->second.reset(new T());
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    meta_.emplace(it->second.get(), Meta{std::string(name), std::move(sorted)});
  }
  return it->second.get();
}

Counter* MetricsRegistry::counter(std::string_view name, const Labels& labels) {
  return FindOrCreate(counters_, name, labels);
}

Gauge* MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  return FindOrCreate(gauges_, name, labels);
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      const Labels& labels) {
  return FindOrCreate(histograms_, name, labels);
}

void MetricsRegistry::OnSnapshot(std::function<void()> callback) {
  std::lock_guard lock(callbacks_mutex_);
  snapshot_callbacks_.push_back(std::move(callback));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  {
    // Run publication hooks before reading values, outside the registry
    // lock (callbacks create/update gauges through the normal API).
    std::vector<std::function<void()>> callbacks;
    {
      std::lock_guard lock(callbacks_mutex_);
      callbacks = snapshot_callbacks_;
    }
    for (const auto& callback : callbacks) callback();
  }
  MetricsSnapshot snapshot;
  std::shared_lock lock(mutex_);
  for (const auto& [key, counter] : counters_) {
    const Meta& meta = meta_.at(counter.get());
    snapshot.counters.push_back({meta.name, meta.labels, counter->Value()});
  }
  for (const auto& [key, gauge] : gauges_) {
    const Meta& meta = meta_.at(gauge.get());
    snapshot.gauges.push_back({meta.name, meta.labels, gauge->Value()});
  }
  for (const auto& [key, histogram] : histograms_) {
    const Meta& meta = meta_.at(histogram.get());
    HistogramSnapshot h;
    h.name = meta.name;
    h.labels = meta.labels;
    uint64_t count = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      h.buckets[i] = histogram->buckets_[i].load(std::memory_order_relaxed);
      count += h.buckets[i];
    }
    // Count derives from the buckets, the single source of truth, so a
    // snapshot racing a Record never shows count != Σ buckets. sum/max can
    // trail by the in-flight sample (documented relaxed contract).
    h.count = count;
    h.sum = histogram->Sum();
    h.max = histogram->Max();
    {
      std::lock_guard exemplar_lock(histogram->exemplar_mutex_);
      h.exemplars.assign(histogram->exemplars_.begin(),
                         histogram->exemplars_.end());
    }
    std::sort(h.exemplars.begin(), h.exemplars.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    snapshot.histograms.push_back(std::move(h));
  }
  // Deterministic output order for rendering and tests.
  auto by_name = [](const auto& a, const auto& b) {
    return a.name != b.name ? a.name < b.name : a.labels < b.labels;
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

}  // namespace xmlreval::obs
