#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/json.h"
#include "obs/flight_recorder.h"

namespace xmlreval::obs {

namespace {

std::atomic<uint32_t> g_span_mask{0};

using Clock = std::chrono::steady_clock;

Clock::time_point TraceEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Thread-local top of the active-span stack (spans link to their parent,
// so the "stack" is an intrusive list through stack-allocated Spans).
thread_local Span* t_active_span = nullptr;
thread_local uint32_t t_active_depth = 0;

// Thread-local causal context: the request this thread is working for
// plus the pending inbound flow edge shipped with the current task.
thread_local uint64_t t_trace_id = 0;
thread_local uint64_t t_pending_flow = 0;
thread_local const char* t_pending_flow_name = nullptr;

std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t> g_next_flow_id{1};

}  // namespace

uint32_t SpanMask() { return g_span_mask.load(std::memory_order_relaxed); }

bool TraceEnabled() { return (SpanMask() & kSpanTraceBit) != 0; }

namespace internal {
void SetSpanMaskBit(uint32_t bit, bool enabled) {
  if (enabled) {
    TraceEpoch();  // pin the epoch before the first span
    g_span_mask.fetch_or(bit, std::memory_order_relaxed);
  } else {
    g_span_mask.fetch_and(~bit, std::memory_order_relaxed);
  }
}
}  // namespace internal

void SetTraceEnabled(bool enabled) {
  internal::SetSpanMaskBit(kSpanTraceBit, enabled);
}

uint64_t TraceNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            TraceEpoch())
          .count());
}

// ---------------------------------------------------------------- context

uint64_t NewTraceId() {
  if (SpanMask() == 0) return 0;
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

TraceContext CurrentTraceContext() { return TraceContext{t_trace_id, 0, nullptr}; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : saved_trace_id_(t_trace_id),
      saved_flow_id_(t_pending_flow),
      saved_flow_name_(t_pending_flow_name) {
  t_trace_id = ctx.trace_id;
  t_pending_flow = ctx.flow_id;
  t_pending_flow_name = ctx.flow_name;
}

ScopedTraceContext::~ScopedTraceContext() {
  t_trace_id = saved_trace_id_;
  t_pending_flow = saved_flow_id_;
  t_pending_flow_name = saved_flow_name_;
}

namespace {
thread_local bool t_keep_hint = false;
}  // namespace

void HintKeepTrace() { t_keep_hint = true; }

RequestScope::RequestScope() : saved_trace_id_(t_trace_id) {
  if (saved_trace_id_ != 0) {
    trace_id_ = saved_trace_id_;  // nested call: same request
    return;
  }
  trace_id_ = NewTraceId();  // 0 when no span consumer is active
  owns_ = trace_id_ != 0;
  t_trace_id = trace_id_;
  if (owns_) t_keep_hint = false;  // fresh request, fresh verdict
}

RequestScope::RequestScope(const TraceContext& ctx)
    : saved_trace_id_(t_trace_id) {
  trace_id_ = ctx.trace_id;
  owns_ = trace_id_ != 0;
  t_trace_id = trace_id_;
  if (owns_) t_keep_hint = false;
}

RequestScope::~RequestScope() {
  t_trace_id = saved_trace_id_;
  // The owner ends the request: settle its staged events (no-op unless
  // tail sampling staged something under this id). Nested scopes that
  // wanted the trace kept left a hint on this thread.
  if (owns_) {
    bool keep = keep_ || t_keep_hint;
    t_keep_hint = false;
    TraceSink::Global().ResolveTrace(trace_id_, keep);
  }
}

TraceContext ForkFlow(const char* name) {
  if (!TraceEnabled()) return TraceContext{};
  uint64_t flow = g_next_flow_id.fetch_add(1, std::memory_order_relaxed);
  TraceSink::Event event;
  event.name = name;
  event.ph = 's';
  event.flow_id = flow;
  event.trace_id = t_trace_id;
  event.tid = TraceSink::CurrentThreadId();
  event.depth = t_active_depth;
  event.ts_us = TraceNowMicros();
  TraceSink::Global().Record(event);
  return TraceContext{t_trace_id, flow, name};
}

void FlowStep(const TraceContext& ctx) {
  if (ctx.flow_id == 0 || !TraceEnabled()) return;
  TraceSink::Event event;
  event.name = ctx.flow_name;
  event.ph = 't';
  event.flow_id = ctx.flow_id;
  event.trace_id = ctx.trace_id;
  event.tid = TraceSink::CurrentThreadId();
  event.depth = t_active_depth;
  event.ts_us = TraceNowMicros();
  TraceSink::Global().Record(event);
}

// ------------------------------------------------------------------ sink

TraceSink::TraceSink() : capacity_(65536) { ring_.resize(capacity_); }

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

uint32_t TraceSink::CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceSink::RecordLocked(const Event& event) {
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  if (count_ < capacity_) {
    ++count_;
  } else {
    ++dropped_;
  }
}

void TraceSink::Record(const Event& event) {
  std::lock_guard lock(mutex_);
  if (tail_sampling_ && event.trace_id != 0) {
    if (staged_events_ >= capacity_) {
      ++tail_dropped_;
      return;
    }
    staged_[event.trace_id].push_back(event);
    ++staged_events_;
    return;
  }
  RecordLocked(event);
}

void TraceSink::SetTailSampling(bool enabled) {
  std::lock_guard lock(mutex_);
  tail_sampling_ = enabled;
  staged_.clear();
  staged_events_ = 0;
}

bool TraceSink::tail_sampling() const {
  std::lock_guard lock(mutex_);
  return tail_sampling_;
}

void TraceSink::ResolveTrace(uint64_t trace_id, bool keep) {
  std::lock_guard lock(mutex_);
  auto it = staged_.find(trace_id);
  if (it == staged_.end()) return;
  std::vector<Event> events = std::move(it->second);
  staged_.erase(it);
  staged_events_ -= events.size();
  if (keep) {
    for (const Event& event : events) RecordLocked(event);
  } else {
    tail_dropped_ += events.size();
  }
}

std::vector<TraceSink::Event> TraceSink::Events() const {
  std::lock_guard lock(mutex_);
  std::vector<Event> events;
  events.reserve(count_);
  size_t start = (head_ + capacity_ - count_) % capacity_;
  for (size_t i = 0; i < count_; ++i) {
    events.push_back(ring_[(start + i) % capacity_]);
  }
  return events;
}

size_t TraceSink::size() const {
  std::lock_guard lock(mutex_);
  return count_;
}

uint64_t TraceSink::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

uint64_t TraceSink::tail_dropped() const {
  std::lock_guard lock(mutex_);
  return tail_dropped_;
}

size_t TraceSink::staged() const {
  std::lock_guard lock(mutex_);
  return staged_events_;
}

void TraceSink::Clear() {
  std::lock_guard lock(mutex_);
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  staged_.clear();
  staged_events_ = 0;
  tail_dropped_ = 0;
}

void TraceSink::SetCapacity(size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, Event{});
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  staged_.clear();
  staged_events_ = 0;
  tail_dropped_ = 0;
}

std::string TraceSink::ExportChromeJson() const {
  std::vector<Event> events = Events();
  // Sort by start time; ties broken longest-duration-first so enclosing
  // spans precede the spans they contain (flow events have dur 0, so they
  // also land after the complete event that encloses them).
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;
                   });
  std::string out = "{\"traceEvents\":[";
  char buf[224];
  bool first = true;
  for (const Event& event : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    out += json::Escape(event.name ? event.name : "?");
    if (event.ph == 'X') {
      std::snprintf(buf, sizeof(buf),
                    "\",\"cat\":\"xmlreval\",\"ph\":\"X\",\"ts\":%llu,"
                    "\"dur\":%llu,\"pid\":1,\"tid\":%u,\"args\":{",
                    static_cast<unsigned long long>(event.ts_us),
                    static_cast<unsigned long long>(event.dur_us), event.tid);
      out += buf;
      std::snprintf(buf, sizeof(buf), "\"depth\":%u", event.depth);
      out += buf;
      if (event.trace_id != 0) {
        std::snprintf(buf, sizeof(buf), ",\"trace_id\":%llu",
                      static_cast<unsigned long long>(event.trace_id));
        out += buf;
      }
      for (uint32_t i = 0; i < event.num_args; ++i) {
        out += ",\"";
        out += json::Escape(event.arg_keys[i] ? event.arg_keys[i] : "?");
        std::snprintf(buf, sizeof(buf), "\":%llu",
                      static_cast<unsigned long long>(event.arg_values[i]));
        out += buf;
      }
      out += "}}";
    } else {
      // Flow events: shared id+cat+name bind s/t/f into one arrow chain;
      // "bp":"e" on the finish attaches it to the enclosing slice.
      std::snprintf(buf, sizeof(buf),
                    "\",\"cat\":\"xmlreval\",\"ph\":\"%c\",\"id\":%llu,"
                    "\"ts\":%llu,\"pid\":1,\"tid\":%u,%s\"args\":{"
                    "\"trace_id\":%llu}}",
                    event.ph,
                    static_cast<unsigned long long>(event.flow_id),
                    static_cast<unsigned long long>(event.ts_us), event.tid,
                    event.ph == 'f' ? "\"bp\":\"e\"," : "",
                    static_cast<unsigned long long>(event.trace_id));
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

#ifndef XMLREVAL_OBS_DISABLED

void Span::Start(const char* name, uint32_t mask) {
  mask_ = mask;
  event_.name = name;
  event_.tid = TraceSink::CurrentThreadId();
  event_.trace_id = t_trace_id;
  parent_ = t_active_span;
  t_active_span = this;
  event_.depth = t_active_depth++;
  event_.ts_us = TraceNowMicros();  // last: exclude stack bookkeeping
  if ((mask_ & kSpanTraceBit) != 0 && t_pending_flow != 0) {
    // First span of a spawned task: consume the inbound flow edge so the
    // arrow terminates on this span. The finish shares the span's start
    // timestamp — "bp":"e" binds by enclosing slice, and an earlier ts
    // would land the arrow in the gap before the span.
    TraceSink::Event flow;
    flow.name = t_pending_flow_name;
    flow.ph = 'f';
    flow.flow_id = t_pending_flow;
    flow.trace_id = t_trace_id;
    flow.tid = event_.tid;
    flow.depth = event_.depth;
    flow.ts_us = event_.ts_us;
    TraceSink::Global().Record(flow);
    t_pending_flow = 0;
    t_pending_flow_name = nullptr;
  }
}

void Span::Finish() {
  event_.dur_us = TraceNowMicros() - event_.ts_us;
  t_active_span = parent_;
  --t_active_depth;
  if ((mask_ & kSpanTraceBit) != 0) TraceSink::Global().Record(event_);
  if ((mask_ & kSpanFlightBit) != 0) {
    FlightRecordSpan(event_.name, event_.ts_us, event_.dur_us,
                     event_.trace_id);
  }
}

#endif  // XMLREVAL_OBS_DISABLED

size_t SnapshotActiveSpans(ActiveSpanInfo* out, size_t max) {
  size_t n = 0;
#ifndef XMLREVAL_OBS_DISABLED
  for (Span* span = t_active_span; span != nullptr && n < max;
       span = span->parent_) {
    out[n].name = span->event_.name;
    out[n].ts_us = span->event_.ts_us;
    out[n].trace_id = span->event_.trace_id;
    ++n;
  }
#else
  (void)out;
  (void)max;
#endif
  return n;
}

}  // namespace xmlreval::obs
