#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/json.h"

namespace xmlreval::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

using Clock = std::chrono::steady_clock;

Clock::time_point TraceEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Thread-local top of the active-span stack (spans link to their parent,
// so the "stack" is an intrusive list through stack-allocated Spans).
thread_local Span* t_active_span = nullptr;
thread_local uint32_t t_active_depth = 0;

}  // namespace

bool TraceEnabled() { return g_trace_enabled.load(std::memory_order_relaxed); }

void SetTraceEnabled(bool enabled) {
  if (enabled) TraceEpoch();  // pin the epoch before the first span
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t TraceNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            TraceEpoch())
          .count());
}

TraceSink::TraceSink() : capacity_(65536) { ring_.resize(capacity_); }

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

uint32_t TraceSink::CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceSink::Record(const Event& event) {
  std::lock_guard lock(mutex_);
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  if (count_ < capacity_) {
    ++count_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceSink::Event> TraceSink::Events() const {
  std::lock_guard lock(mutex_);
  std::vector<Event> events;
  events.reserve(count_);
  size_t start = (head_ + capacity_ - count_) % capacity_;
  for (size_t i = 0; i < count_; ++i) {
    events.push_back(ring_[(start + i) % capacity_]);
  }
  return events;
}

size_t TraceSink::size() const {
  std::lock_guard lock(mutex_);
  return count_;
}

uint64_t TraceSink::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void TraceSink::Clear() {
  std::lock_guard lock(mutex_);
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

void TraceSink::SetCapacity(size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, Event{});
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

std::string TraceSink::ExportChromeJson() const {
  std::vector<Event> events = Events();
  // Sort by start time; ties broken longest-duration-first so enclosing
  // spans precede the spans they contain.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;
                   });
  std::string out = "{\"traceEvents\":[";
  char buf[192];
  bool first = true;
  for (const Event& event : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    out += json::Escape(event.name ? event.name : "?");
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"xmlreval\",\"ph\":\"X\",\"ts\":%llu,"
                  "\"dur\":%llu,\"pid\":1,\"tid\":%u,\"args\":{",
                  static_cast<unsigned long long>(event.ts_us),
                  static_cast<unsigned long long>(event.dur_us), event.tid);
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"depth\":%u", event.depth);
    out += buf;
    for (uint32_t i = 0; i < event.num_args; ++i) {
      out += ",\"";
      out += json::Escape(event.arg_keys[i] ? event.arg_keys[i] : "?");
      std::snprintf(buf, sizeof(buf), "\":%llu",
                    static_cast<unsigned long long>(event.arg_values[i]));
      out += buf;
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

#ifndef XMLREVAL_OBS_DISABLED

void Span::Start(const char* name) {
  enabled_ = true;
  event_.name = name;
  event_.tid = TraceSink::CurrentThreadId();
  parent_ = t_active_span;
  t_active_span = this;
  event_.depth = t_active_depth++;
  event_.ts_us = TraceNowMicros();  // last: exclude stack bookkeeping
}

void Span::Finish() {
  event_.dur_us = TraceNowMicros() - event_.ts_us;
  t_active_span = parent_;
  --t_active_depth;
  TraceSink::Global().Record(event_);
}

#endif  // XMLREVAL_OBS_DISABLED

}  // namespace xmlreval::obs
