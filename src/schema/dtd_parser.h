// DTD front end: parses <!ELEMENT ...> declarations into an abstract
// XML Schema in which — per §3's characterization of DTDs — every element
// label is assigned a single type irrespective of context (the type is
// named after the label).
//
// Supported: EMPTY, ANY, (#PCDATA), and the full content-model expression
// grammar with ',', '|', '?', '*', '+'. <!ATTLIST> and <!NOTATION> are
// parsed and ignored (attributes are outside the paper's structural
// model); <!ENTITY> declarations and mixed content (#PCDATA|a|...)* are
// rejected as unsupported.

#ifndef XMLREVAL_SCHEMA_DTD_PARSER_H_
#define XMLREVAL_SCHEMA_DTD_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "schema/abstract_schema.h"

namespace xmlreval::schema {

struct DtdParseOptions {
  /// Labels to register as roots (R). Empty = every declared element may be
  /// a root, the common convention when no DOCTYPE name is available.
  std::vector<std::string> roots;
  SchemaBuilder::BuildOptions build;
};

/// Parses DTD text (the internal-subset syntax) into a Schema sharing
/// `alphabet`.
Result<Schema> ParseDtd(std::string_view input,
                        std::shared_ptr<Alphabet> alphabet,
                        const DtdParseOptions& options = {});

}  // namespace xmlreval::schema

#endif  // XMLREVAL_SCHEMA_DTD_PARSER_H_
