// XML Schema (XSD) front end.
//
// Parses the structural subset of XSD that abstract XML Schemas model
// (§3 of the paper), using xmlreval's own XML parser for the schema
// document itself:
//
//   * global <element> declarations (the roots R), with named, built-in, or
//     inline anonymous types,
//   * named and anonymous <complexType> with <sequence> / <choice>
//     particles, arbitrarily nested, with minOccurs / maxOccurs,
//   * <element ref="..."/> references to global elements,
//   * named and anonymous <simpleType> via <restriction> over the built-in
//     atomic types with the minInclusive / maxInclusive / minExclusive /
//     maxExclusive / length / minLength / maxLength / enumeration facets,
//   * built-in type references (xsd:string, xsd:positiveInteger, ...).
//
// Outside the subset (rejected with kUnsupported): attributes on content
// (<attribute> is skipped, matching the paper's structural focus), <all>,
// <any>, substitution groups, type derivation by extension, mixed content,
// identity constraints, imports/includes.

#ifndef XMLREVAL_SCHEMA_XSD_PARSER_H_
#define XMLREVAL_SCHEMA_XSD_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "schema/abstract_schema.h"

namespace xmlreval::schema {

struct XsdParseOptions {
  SchemaBuilder::BuildOptions build;
};

/// Parses XSD text into a Schema sharing `alphabet`.
Result<Schema> ParseXsd(std::string_view input,
                        std::shared_ptr<Alphabet> alphabet,
                        const XsdParseOptions& options = {});

}  // namespace xmlreval::schema

#endif  // XMLREVAL_SCHEMA_XSD_PARSER_H_
