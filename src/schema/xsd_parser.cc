#include "schema/xsd_parser.h"

#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"
#include "xml/parser.h"

namespace xmlreval::schema {
namespace {

using xml::Document;
using xml::NodeId;

// XSD node names are matched by local name so any namespace prefix works.
std::string_view LocalName(std::string_view qname) {
  size_t colon = qname.rfind(':');
  return colon == std::string_view::npos ? qname : qname.substr(colon + 1);
}

bool IsXsdNode(const Document& doc, NodeId node, std::string_view local) {
  return doc.IsElement(node) && LocalName(doc.label(node)) == local;
}

class XsdCompiler {
 public:
  XsdCompiler(const Document& doc, std::shared_ptr<Alphabet> alphabet)
      : doc_(doc), alphabet_(std::move(alphabet)), builder_(alphabet_) {}

  Result<Schema> Compile(const SchemaBuilder::BuildOptions& build_options) {
    NodeId root = doc_.root();
    if (!IsXsdNode(doc_, root, "schema")) {
      return Status::ParseError("XSD document root must be <schema>");
    }

    // Index global declarations by name.
    for (NodeId child : xml::ElementChildren(doc_, root)) {
      std::string_view local = LocalName(doc_.label(child));
      const std::string* name = doc_.FindAttribute(child, "name");
      if (local == "element") {
        if (!name) return Err(child, "global <element> requires a name");
        if (!global_elements_.emplace(*name, child).second) {
          return Err(child, "duplicate global element '" + *name + "'");
        }
      } else if (local == "complexType") {
        if (!name) return Err(child, "global <complexType> requires a name");
        if (!global_complex_.emplace(*name, child).second) {
          return Err(child, "duplicate complexType '" + *name + "'");
        }
      } else if (local == "simpleType") {
        if (!name) return Err(child, "global <simpleType> requires a name");
        if (!global_simple_.emplace(*name, child).second) {
          return Err(child, "duplicate simpleType '" + *name + "'");
        }
      } else if (local == "group") {
        if (!name) return Err(child, "global <group> requires a name");
        if (!global_groups_.emplace(*name, child).second) {
          return Err(child, "duplicate group '" + *name + "'");
        }
      } else if (local == "attributeGroup") {
        if (!name) return Err(child, "global <attributeGroup> requires a name");
        if (!global_attr_groups_.emplace(*name, child).second) {
          return Err(child, "duplicate attributeGroup '" + *name + "'");
        }
      } else if (local == "annotation" || local == "attribute" ||
                 local == "notation") {
        continue;  // outside the structural model
      } else if (local == "import" || local == "include" ||
                 local == "redefine") {
        return Status::Unsupported("XSD <" + std::string(local) +
                                   "> is not supported");
      } else {
        return Err(child, "unsupported top-level XSD construct <" +
                              std::string(local) + ">");
      }
    }

    // Resolve every global element: its type becomes a root entry.
    for (const auto& [name, node] : global_elements_) {
      ASSIGN_OR_RETURN(TypeId t, ResolveElementType(node, name));
      RETURN_IF_ERROR(builder_.AddRoot(name, t));
    }

    return builder_.Build(build_options);
  }

 private:
  Status Err(NodeId node, std::string msg) const {
    return Status::InvalidSchema("<" + std::string(doc_.label(node)) +
                                 ">: " + msg);
  }

  // ---- simple types -------------------------------------------------------

  // Returns the SimpleType denoted by a type NAME that must be simple:
  // either a built-in (xsd:*) or a global <simpleType>.
  Result<SimpleType> ResolveSimpleByName(std::string_view name) {
    if (std::optional<AtomicKind> kind = AtomicKindFromName(name)) {
      return SimpleType{*kind, {}};
    }
    auto it = global_simple_.find(std::string(name));
    if (it == global_simple_.end()) {
      return Status::InvalidSchema("unknown simple type '" + std::string(name) +
                                   "'");
    }
    if (resolving_simple_.count(it->first)) {
      return Status::InvalidSchema("cyclic simpleType derivation at '" +
                                   std::string(name) + "'");
    }
    resolving_simple_.insert(it->first);
    Result<SimpleType> result = ResolveSimpleTypeNode(it->second);
    resolving_simple_.erase(it->first);
    return result;
  }

  // <simpleType><restriction base="..."> facets </restriction></simpleType>
  Result<SimpleType> ResolveSimpleTypeNode(NodeId node) {
    NodeId restriction = xml::kInvalidNode;
    for (NodeId child : xml::ElementChildren(doc_, node)) {
      std::string_view local = LocalName(doc_.label(child));
      if (local == "annotation") continue;
      if (local == "restriction") {
        restriction = child;
      } else {
        return Status::Unsupported("simpleType construct <" +
                                   std::string(local) +
                                   "> is not supported (only <restriction>)");
      }
    }
    if (restriction == xml::kInvalidNode) {
      return Err(node, "simpleType requires a <restriction>");
    }
    const std::string* base = doc_.FindAttribute(restriction, "base");
    if (!base) return Err(restriction, "restriction requires a base");
    ASSIGN_OR_RETURN(SimpleType type, ResolveSimpleByName(*base));

    for (NodeId facet : xml::ElementChildren(doc_, restriction)) {
      std::string_view local = LocalName(doc_.label(facet));
      if (local == "annotation") continue;
      const std::string* value = doc_.FindAttribute(facet, "value");
      if (!value) return Err(facet, "facet requires a value attribute");
      RETURN_IF_ERROR(ApplyFacet(&type, local, *value));
    }
    return type;
  }

  Status ApplyFacet(SimpleType* type, std::string_view facet,
                    std::string_view value) {
    Facets& f = type->facets;
    auto decimal = [&]() { return ParseDecimalScaled(value); };
    auto length = [&]() -> Result<uint32_t> {
      ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      if (v < 0) return Status::InvalidSchema("negative length facet");
      return static_cast<uint32_t>(v);
    };
    if (facet == "minInclusive") {
      ASSIGN_OR_RETURN(f.min_inclusive, decimal());
    } else if (facet == "maxInclusive") {
      ASSIGN_OR_RETURN(f.max_inclusive, decimal());
    } else if (facet == "minExclusive") {
      ASSIGN_OR_RETURN(f.min_exclusive, decimal());
    } else if (facet == "maxExclusive") {
      ASSIGN_OR_RETURN(f.max_exclusive, decimal());
    } else if (facet == "length") {
      ASSIGN_OR_RETURN(f.length, length());
    } else if (facet == "minLength") {
      ASSIGN_OR_RETURN(f.min_length, length());
    } else if (facet == "maxLength") {
      ASSIGN_OR_RETURN(f.max_length, length());
    } else if (facet == "enumeration") {
      f.enumeration.emplace_back(value);
    } else if (facet == "pattern" || facet == "whiteSpace" ||
               facet == "fractionDigits" || facet == "totalDigits") {
      return Status::Unsupported("facet <" + std::string(facet) +
                                 "> is not supported");
    } else {
      return Status::InvalidSchema("unknown facet <" + std::string(facet) +
                                   ">");
    }
    return Status::OK();
  }

  // Declares (or reuses) a schema type for a SimpleType value. Built-ins
  // and repeated anonymous restrictions share declarations by structural
  // equality, keyed by a canonical rendering.
  Result<TypeId> InternSimple(const SimpleType& type, std::string_view hint) {
    for (const auto& [existing, id] : interned_simple_) {
      if (existing == type) return id;
    }
    std::string name = std::string(hint);
    int suffix = 0;
    while (used_type_names_.count(name)) {
      name = std::string(hint) + "$" + std::to_string(++suffix);
    }
    used_type_names_.insert(name);
    ASSIGN_OR_RETURN(TypeId id, builder_.DeclareSimpleType(name, type));
    interned_simple_.emplace_back(type, id);
    return id;
  }

  // ---- complex types ------------------------------------------------------

  // Returns the TypeId for a global complexType, compiling it on first use.
  Result<TypeId> ResolveComplexByName(const std::string& name) {
    auto done = compiled_complex_.find(name);
    if (done != compiled_complex_.end()) return done->second;
    auto it = global_complex_.find(name);
    if (it == global_complex_.end()) {
      return Status::InvalidSchema("unknown type '" + name + "'");
    }
    // Declare before compiling the body so recursive references resolve.
    if (used_type_names_.count(name)) {
      return Status::InvalidSchema("type name collision on '" + name + "'");
    }
    used_type_names_.insert(name);
    ASSIGN_OR_RETURN(TypeId id, builder_.DeclareComplexType(name));
    compiled_complex_.emplace(name, id);
    RETURN_IF_ERROR(CompileComplexBody(it->second, id));
    return id;
  }

  Result<TypeId> DeclareAnonymousComplex(NodeId node, std::string_view hint) {
    std::string name = std::string(hint) + "$anon";
    int suffix = 0;
    while (used_type_names_.count(name)) {
      name = std::string(hint) + "$anon" + std::to_string(++suffix);
    }
    used_type_names_.insert(name);
    ASSIGN_OR_RETURN(TypeId id, builder_.DeclareComplexType(name));
    RETURN_IF_ERROR(CompileComplexBody(node, id));
    return id;
  }

  // <attribute name=".." type=".." use="required|optional|prohibited"/>,
  // with an optional inline <simpleType>.
  Status CompileAttribute(NodeId node, TypeId owner) {
    const std::string* name = doc_.FindAttribute(node, "name");
    if (!name) return Err(node, "<attribute> requires a name");
    const std::string* use = doc_.FindAttribute(node, "use");
    if (use && *use == "prohibited") return Status::OK();
    bool required = use && *use == "required";

    SimpleType attr_type;  // default: unrestricted string (anySimpleType)
    const std::string* type_attr = doc_.FindAttribute(node, "type");
    NodeId inline_simple = xml::kInvalidNode;
    for (NodeId child : xml::ElementChildren(doc_, node)) {
      if (LocalName(doc_.label(child)) == "simpleType") inline_simple = child;
    }
    if (type_attr) {
      ASSIGN_OR_RETURN(attr_type, ResolveSimpleByName(*type_attr));
    } else if (inline_simple != xml::kInvalidNode) {
      ASSIGN_OR_RETURN(attr_type, ResolveSimpleTypeNode(inline_simple));
    }
    std::optional<std::string> fixed;
    if (const std::string* v = doc_.FindAttribute(node, "fixed")) fixed = *v;
    // `default` affects the infoset, not validity; accepted and ignored.
    return builder_.DeclareAttribute(owner, *name, attr_type, required,
                                     std::move(fixed));
  }

  // Compiles <complexType> content into a content model + child typings.
  Status CompileComplexBody(NodeId node, TypeId id) {
    automata::RegexPtr regex = automata::Regex::Epsilon();
    bool seen_particle = false;
    bool used_all = false;
    for (NodeId child : xml::ElementChildren(doc_, node)) {
      std::string_view local = LocalName(doc_.label(child));
      if (local == "annotation") continue;
      if (local == "attribute") {
        RETURN_IF_ERROR(CompileAttribute(child, id));
        continue;
      }
      if (local == "anyAttribute") {
        RETURN_IF_ERROR(builder_.SetOpenAttributes(id));
        continue;
      }
      if (local == "attributeGroup") {
        const std::string* ref = doc_.FindAttribute(child, "ref");
        if (!ref) return Err(child, "<attributeGroup> requires a ref");
        auto it = global_attr_groups_.find(*ref);
        if (it == global_attr_groups_.end()) {
          return Err(child, "reference to unknown attributeGroup '" + *ref +
                                "'");
        }
        for (NodeId member : xml::ElementChildren(doc_, it->second)) {
          std::string_view member_local = LocalName(doc_.label(member));
          if (member_local == "annotation") continue;
          if (member_local == "anyAttribute") {
            RETURN_IF_ERROR(builder_.SetOpenAttributes(id));
            continue;
          }
          if (member_local != "attribute") {
            return Err(member, "attributeGroup '" + *ref +
                                   "' may contain only <attribute>");
          }
          RETURN_IF_ERROR(CompileAttribute(member, id));
        }
        continue;
      }
      if (local == "sequence" || local == "choice") {
        if (seen_particle) {
          return Err(node, "complexType with multiple top-level particles");
        }
        seen_particle = true;
        ASSIGN_OR_RETURN(regex, CompileParticle(child, id));
      } else if (local == "all") {
        if (seen_particle) {
          return Err(node, "complexType with multiple top-level particles");
        }
        seen_particle = true;
        RETURN_IF_ERROR(CompileAllGroup(child, id));
        used_all = true;
      } else if (local == "simpleContent" || local == "complexContent" ||
                 local == "group") {
        return Status::Unsupported("complexType construct <" +
                                   std::string(local) + "> is not supported");
      } else {
        return Err(child, "unexpected construct in complexType");
      }
    }
    if (used_all) return Status::OK();
    return builder_.SetContentModel(id, std::move(regex));
  }

  // <all>: each member element appears at most once, in any order. Not
  // expressible as a 1-unambiguous regex, so it compiles straight to the
  // subset (bitmask) DFA — states are the sets of members already seen —
  // which is deterministic by construction. Member count is capped at 12
  // (4096 states) per the usual engine practice.
  Status CompileAllGroup(NodeId node, TypeId owner) {
    bool group_optional = false;
    if (const std::string* v = doc_.FindAttribute(node, "minOccurs")) {
      if (*v == "0") {
        group_optional = true;
      } else if (*v != "1") {
        return Err(node, "<all> minOccurs must be 0 or 1");
      }
    }
    if (const std::string* v = doc_.FindAttribute(node, "maxOccurs")) {
      if (*v != "1") return Err(node, "<all> maxOccurs must be 1");
    }

    struct Member {
      Symbol sym;
      bool required;
    };
    std::vector<Member> members;
    std::unordered_set<Symbol> seen;
    for (NodeId child : xml::ElementChildren(doc_, node)) {
      std::string_view local = LocalName(doc_.label(child));
      if (local == "annotation") continue;
      if (local != "element") {
        return Err(child, "<all> may contain only <element> particles");
      }
      const std::string* name = doc_.FindAttribute(child, "name");
      if (!name) return Err(child, "<all> member requires a name");
      bool required = true;
      if (const std::string* v = doc_.FindAttribute(child, "minOccurs")) {
        if (*v == "0") {
          required = false;
        } else if (*v != "1") {
          return Err(child, "<all> member minOccurs must be 0 or 1");
        }
      }
      if (const std::string* v = doc_.FindAttribute(child, "maxOccurs")) {
        if (*v != "1") return Err(child, "<all> member maxOccurs must be 1");
      }
      ASSIGN_OR_RETURN(TypeId member_type, ResolveElementType(child, *name));
      RETURN_IF_ERROR(builder_.MapChild(owner, *name, member_type));
      Symbol sym = alphabet_->Intern(*name);
      if (!seen.insert(sym).second) {
        return Err(child, "duplicate <all> member '" + *name + "'");
      }
      members.push_back(Member{sym, required});
    }
    if (members.size() > 12) {
      return Status::Unsupported(
          "<all> groups with more than 12 members are not supported");
    }

    size_t n = members.size();
    size_t num_sets = size_t{1} << n;
    size_t alphabet_size = alphabet_->size();
    automata::Dfa dfa(num_sets + 1, alphabet_size);
    automata::StateId sink = static_cast<automata::StateId>(num_sets);
    for (size_t set = 0; set < num_sets; ++set) {
      automata::StateId from = static_cast<automata::StateId>(set);
      for (Symbol sym = 0; sym < alphabet_size; ++sym) {
        dfa.SetTransition(from, sym, sink);
      }
      for (size_t i = 0; i < n; ++i) {
        if (set & (size_t{1} << i)) continue;  // already seen
        dfa.SetTransition(from, members[i].sym,
                          static_cast<automata::StateId>(set | (size_t{1} << i)));
      }
      bool all_required_present = true;
      for (size_t i = 0; i < n; ++i) {
        if (members[i].required && !(set & (size_t{1} << i))) {
          all_required_present = false;
          break;
        }
      }
      dfa.SetAccepting(from, all_required_present);
    }
    for (Symbol sym = 0; sym < alphabet_size; ++sym) {
      dfa.SetTransition(sink, sym, sink);
    }
    if (group_optional) dfa.SetAccepting(0, true);
    dfa.set_start_state(0);

    std::vector<Symbol> symbols;
    for (const Member& m : members) symbols.push_back(m.sym);
    return builder_.SetContentModelDfa(owner, std::move(dfa),
                                       std::move(symbols));
  }

  // Wraps `inner` with minOccurs/maxOccurs attributes of `node`.
  Result<automata::RegexPtr> ApplyOccurs(NodeId node,
                                         automata::RegexPtr inner) {
    uint32_t min = 1;
    uint32_t max = 1;
    if (const std::string* v = doc_.FindAttribute(node, "minOccurs")) {
      ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(*v));
      if (parsed < 0) return Err(node, "negative minOccurs");
      min = static_cast<uint32_t>(parsed);
    }
    if (const std::string* v = doc_.FindAttribute(node, "maxOccurs")) {
      if (*v == "unbounded") {
        max = automata::kUnbounded;
      } else {
        ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(*v));
        if (parsed < 0) return Err(node, "negative maxOccurs");
        max = static_cast<uint32_t>(parsed);
      }
    }
    if (max != automata::kUnbounded && max < min) {
      return Err(node, "maxOccurs < minOccurs");
    }
    if (min == 1 && max == 1) return inner;
    return automata::Regex::Repeat(std::move(inner), min, max);
  }

  // Compiles a <sequence>/<choice>/<element> particle into a regex,
  // registering child typings on `owner` along the way.
  Result<automata::RegexPtr> CompileParticle(NodeId node, TypeId owner) {
    std::string_view local = LocalName(doc_.label(node));
    if (local == "sequence" || local == "choice") {
      std::vector<automata::RegexPtr> parts;
      for (NodeId child : xml::ElementChildren(doc_, node)) {
        std::string_view child_local = LocalName(doc_.label(child));
        if (child_local == "annotation") continue;
        ASSIGN_OR_RETURN(automata::RegexPtr part,
                         CompileParticle(child, owner));
        parts.push_back(std::move(part));
      }
      automata::RegexPtr combined =
          (local == "sequence") ? automata::Regex::Concat(std::move(parts))
                                : automata::Regex::Alternate(std::move(parts));
      return ApplyOccurs(node, std::move(combined));
    }
    if (local == "element") {
      std::string label;
      TypeId element_type = kInvalidType;
      if (const std::string* ref = doc_.FindAttribute(node, "ref")) {
        auto it = global_elements_.find(*ref);
        if (it == global_elements_.end()) {
          return Err(node, "element ref to unknown global element '" + *ref +
                               "'");
        }
        label = *ref;
        ASSIGN_OR_RETURN(element_type, ResolveElementType(it->second, *ref));
      } else {
        const std::string* name = doc_.FindAttribute(node, "name");
        if (!name) return Err(node, "element requires name or ref");
        label = *name;
        ASSIGN_OR_RETURN(element_type, ResolveElementType(node, *name));
      }
      RETURN_IF_ERROR(builder_.MapChild(owner, label, element_type));
      automata::RegexPtr sym =
          automata::Regex::Sym(alphabet_->Intern(label));
      return ApplyOccurs(node, std::move(sym));
    }
    if (local == "group") {
      const std::string* ref = doc_.FindAttribute(node, "ref");
      if (!ref) return Err(node, "<group> particle requires a ref");
      auto it = global_groups_.find(*ref);
      if (it == global_groups_.end()) {
        return Err(node, "reference to unknown group '" + *ref + "'");
      }
      if (resolving_groups_.count(*ref)) {
        return Err(node, "cyclic group reference at '" + *ref + "'");
      }
      resolving_groups_.insert(*ref);
      // The group's body is its single sequence/choice child.
      NodeId body = xml::kInvalidNode;
      for (NodeId child : xml::ElementChildren(doc_, it->second)) {
        std::string_view child_local = LocalName(doc_.label(child));
        if (child_local == "annotation") continue;
        if (body != xml::kInvalidNode) {
          resolving_groups_.erase(*ref);
          return Err(it->second, "group '" + *ref +
                                     "' must contain one particle");
        }
        body = child;
      }
      if (body == xml::kInvalidNode) {
        resolving_groups_.erase(*ref);
        return Err(it->second, "group '" + *ref + "' is empty");
      }
      Result<automata::RegexPtr> inner = CompileParticle(body, owner);
      resolving_groups_.erase(*ref);
      RETURN_IF_ERROR(inner.status());
      return ApplyOccurs(node, std::move(inner).value());
    }
    if (local == "any") {
      return Status::Unsupported("particle <any> is not supported");
    }
    return Err(node, "unexpected particle");
  }

  // The type of an <element> declaration: @type (built-in, simple, or
  // complex), or an inline anonymous simpleType/complexType child.
  Result<TypeId> ResolveElementType(NodeId node, const std::string& name) {
    auto memo = element_type_memo_.find(node);
    if (memo != element_type_memo_.end()) {
      if (memo->second == kInvalidType) {
        return Status::InvalidSchema("recursive element resolution at '" +
                                     name + "'");
      }
      return memo->second;
    }
    element_type_memo_.emplace(node, kInvalidType);  // cycle guard

    Result<TypeId> resolved = ResolveElementTypeUncached(node, name);
    if (resolved.ok()) {
      element_type_memo_[node] = *resolved;
    } else {
      element_type_memo_.erase(node);
    }
    return resolved;
  }

  Result<TypeId> ResolveElementTypeUncached(NodeId node,
                                            const std::string& name) {
    const std::string* type_attr = doc_.FindAttribute(node, "type");
    NodeId inline_simple = xml::kInvalidNode;
    NodeId inline_complex = xml::kInvalidNode;
    for (NodeId child : xml::ElementChildren(doc_, node)) {
      std::string_view local = LocalName(doc_.label(child));
      if (local == "simpleType") inline_simple = child;
      if (local == "complexType") inline_complex = child;
    }

    if (type_attr) {
      if (inline_simple != xml::kInvalidNode ||
          inline_complex != xml::kInvalidNode) {
        return Err(node, "element '" + name +
                             "' has both a type attribute and an inline type");
      }
      // Built-in?
      if (AtomicKindFromName(*type_attr)) {
        ASSIGN_OR_RETURN(SimpleType st, ResolveSimpleByName(*type_attr));
        return InternSimple(st, *type_attr);
      }
      // Named simple?
      if (global_simple_.count(*type_attr)) {
        ASSIGN_OR_RETURN(SimpleType st, ResolveSimpleByName(*type_attr));
        return InternSimple(st, *type_attr);
      }
      // Named complex.
      return ResolveComplexByName(*type_attr);
    }
    if (inline_simple != xml::kInvalidNode) {
      ASSIGN_OR_RETURN(SimpleType st, ResolveSimpleTypeNode(inline_simple));
      return InternSimple(st, name + "$type");
    }
    if (inline_complex != xml::kInvalidNode) {
      return DeclareAnonymousComplex(inline_complex, name + "$type");
    }
    return Err(node, "element '" + name +
                         "' has no type (xsd:anyType is not supported)");
  }

  const Document& doc_;
  std::shared_ptr<Alphabet> alphabet_;
  SchemaBuilder builder_;

  std::unordered_map<std::string, NodeId> global_elements_;
  std::unordered_map<std::string, NodeId> global_complex_;
  std::unordered_map<std::string, NodeId> global_simple_;
  std::unordered_map<std::string, NodeId> global_groups_;
  std::unordered_map<std::string, NodeId> global_attr_groups_;
  std::unordered_set<std::string> resolving_groups_;

  std::unordered_map<std::string, TypeId> compiled_complex_;
  std::unordered_map<NodeId, TypeId> element_type_memo_;
  std::vector<std::pair<SimpleType, TypeId>> interned_simple_;
  std::unordered_set<std::string> used_type_names_;
  std::unordered_set<std::string> resolving_simple_;
};

}  // namespace

Result<Schema> ParseXsd(std::string_view input,
                        std::shared_ptr<Alphabet> alphabet,
                        const XsdParseOptions& options) {
  ASSIGN_OR_RETURN(Document doc, xml::ParseXml(input));
  XsdCompiler compiler(doc, std::move(alphabet));
  return compiler.Compile(options.build);
}

}  // namespace xmlreval::schema
