#include "schema/xsd_writer.h"

#include <cstdint>

#include "common/macros.h"
#include "common/string_util.h"

namespace xmlreval::schema {

namespace {

constexpr int64_t kScale = 1000000000;

// Renders a scaled decimal (value * 10^9) in canonical lexical form.
std::string RenderScaled(int64_t scaled) {
  int64_t magnitude = scaled < 0 ? -scaled : scaled;
  std::string out = scaled < 0 ? "-" : "";
  out += std::to_string(magnitude / kScale);
  int64_t frac = magnitude % kScale;
  if (frac != 0) {
    std::string digits = std::to_string(frac);
    digits.insert(0, 9 - digits.size(), '0');
    while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
    out += "." + digits;
  }
  return out;
}

std::string BuiltinName(AtomicKind kind) {
  return "xsd:" + std::string(AtomicKindName(kind));
}

bool IsPlainBuiltin(const SimpleType& type) {
  return type.facets.IsUnrestricted();
}

class Writer {
 public:
  explicit Writer(const Schema& schema) : schema_(schema) {}

  Result<std::string> Write() {
    out_ += "<xsd:schema xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\">\n";

    // Global elements (the roots R).
    for (const auto& [sym, type] : schema_.roots()) {
      out_ += "  <xsd:element name=\"" + schema_.alphabet()->Name(sym) +
              "\" type=\"" + TypeRef(type) + "\"/>\n";
    }

    // Named simple types (plain builtins are referenced directly).
    for (TypeId t = 0; t < schema_.num_types(); ++t) {
      if (!schema_.IsSimple(t) || IsPlainBuiltin(schema_.simple_type(t))) {
        continue;
      }
      RETURN_IF_ERROR(WriteSimpleType(t));
    }

    // Complex types.
    for (TypeId t = 0; t < schema_.num_types(); ++t) {
      if (schema_.IsComplex(t)) {
        RETURN_IF_ERROR(WriteComplexType(t));
      }
    }

    out_ += "</xsd:schema>\n";
    return std::move(out_);
  }

 private:
  std::string TypeRef(TypeId t) const {
    if (schema_.IsSimple(t) && IsPlainBuiltin(schema_.simple_type(t))) {
      return BuiltinName(schema_.simple_type(t).kind);
    }
    return schema_.TypeName(t);
  }

  void WriteFacets(const Facets& f, const std::string& indent) {
    auto facet = [&](const char* name, const std::string& value) {
      out_ += indent + "<xsd:" + name + " value=\"" + EscapeXmlText(value) +
              "\"/>\n";
    };
    if (f.min_inclusive) facet("minInclusive", RenderScaled(*f.min_inclusive));
    if (f.max_inclusive) facet("maxInclusive", RenderScaled(*f.max_inclusive));
    if (f.min_exclusive) facet("minExclusive", RenderScaled(*f.min_exclusive));
    if (f.max_exclusive) facet("maxExclusive", RenderScaled(*f.max_exclusive));
    if (f.length) facet("length", std::to_string(*f.length));
    if (f.min_length) facet("minLength", std::to_string(*f.min_length));
    if (f.max_length) facet("maxLength", std::to_string(*f.max_length));
    for (const std::string& v : f.enumeration) facet("enumeration", v);
  }

  Status WriteSimpleType(TypeId t) {
    const SimpleType& st = schema_.simple_type(t);
    out_ += "  <xsd:simpleType name=\"" + schema_.TypeName(t) + "\">\n";
    out_ += "    <xsd:restriction base=\"" + BuiltinName(st.kind) + "\">\n";
    WriteFacets(st.facets, "      ");
    out_ += "    </xsd:restriction>\n";
    out_ += "  </xsd:simpleType>\n";
    return Status::OK();
  }

  // Emits an anonymous inline simple type (for attributes with facets).
  void WriteInlineSimple(const SimpleType& st, const std::string& indent) {
    out_ += indent + "<xsd:simpleType>\n";
    out_ += indent + "  <xsd:restriction base=\"" + BuiltinName(st.kind) +
            "\">\n";
    WriteFacets(st.facets, indent + "    ");
    out_ += indent + "  </xsd:restriction>\n";
    out_ += indent + "</xsd:simpleType>\n";
  }

  // Renders one particle. `occurs` carries minOccurs/maxOccurs attributes
  // already formatted (may be empty).
  Status WriteParticle(TypeId owner, const automata::RegexPtr& r,
                       const std::string& indent, const std::string& occurs) {
    using automata::RegexKind;
    switch (r->kind()) {
      case RegexKind::kEpsilon:
        out_ += indent + "<xsd:sequence" + occurs + "/>\n";
        return Status::OK();
      case RegexKind::kEmptySet:
        return Status::Unsupported(
            "empty-set content models have no XSD rendering");
      case RegexKind::kSymbol: {
        TypeId child = schema_.ChildType(owner, r->symbol());
        if (child == kInvalidType) {
          return Status::Internal("content model uses untyped label");
        }
        out_ += indent + "<xsd:element name=\"" +
                schema_.alphabet()->Name(r->symbol()) + "\" type=\"" +
                TypeRef(child) + "\"" + occurs + "/>\n";
        return Status::OK();
      }
      case RegexKind::kConcat: {
        out_ += indent + "<xsd:sequence" + occurs + ">\n";
        for (const automata::RegexPtr& c : r->children()) {
          RETURN_IF_ERROR(WriteParticle(owner, c, indent + "  ", ""));
        }
        out_ += indent + "</xsd:sequence>\n";
        return Status::OK();
      }
      case RegexKind::kAlternate: {
        out_ += indent + "<xsd:choice" + occurs + ">\n";
        for (const automata::RegexPtr& c : r->children()) {
          RETURN_IF_ERROR(WriteParticle(owner, c, indent + "  ", ""));
        }
        out_ += indent + "</xsd:choice>\n";
        return Status::OK();
      }
      case RegexKind::kOptional:
        return WrapOccurrence(owner, r->child(), indent, "0", "1");
      case RegexKind::kStar:
        return WrapOccurrence(owner, r->child(), indent, "0", "unbounded");
      case RegexKind::kPlus:
        return WrapOccurrence(owner, r->child(), indent, "1", "unbounded");
      case RegexKind::kRepeat: {
        std::string max = r->max() == automata::kUnbounded
                              ? "unbounded"
                              : std::to_string(r->max());
        return WrapOccurrence(owner, r->child(), indent,
                              std::to_string(r->min()), max);
      }
    }
    return Status::Internal("unknown regex kind");
  }

  // Applies occurrence bounds to a particle: directly on a plain element,
  // via a wrapping <sequence> otherwise. A wrapper that already carries
  // occurrence attributes must not receive a second set — the inner node
  // is boxed first.
  Status WrapOccurrence(TypeId owner, const automata::RegexPtr& inner,
                        const std::string& indent, const std::string& min,
                        const std::string& max) {
    std::string occurs;
    if (min != "1") occurs += " minOccurs=\"" + min + "\"";
    if (max != "1") occurs += " maxOccurs=\"" + max + "\"";
    using automata::RegexKind;
    if (inner->kind() == RegexKind::kSymbol ||
        inner->kind() == RegexKind::kConcat ||
        inner->kind() == RegexKind::kAlternate) {
      return WriteParticle(owner, inner, indent, occurs);
    }
    out_ += indent + "<xsd:sequence" + occurs + ">\n";
    RETURN_IF_ERROR(WriteParticle(owner, inner, indent + "  ", ""));
    out_ += indent + "</xsd:sequence>\n";
    return Status::OK();
  }

  Status WriteComplexType(TypeId t) {
    const ComplexType& ct = schema_.complex_type(t);
    if (!ct.content_model) {
      return Status::Unsupported(
          "type '" + schema_.TypeName(t) +
          "' has a preset content DFA (e.g. an <all> group) with no "
          "regular-expression rendering");
    }
    out_ += "  <xsd:complexType name=\"" + schema_.TypeName(t) + "\">\n";
    // The parser expects a single top-level sequence/choice particle.
    using automata::RegexKind;
    if (ct.content_model->kind() == RegexKind::kConcat ||
        ct.content_model->kind() == RegexKind::kAlternate ||
        ct.content_model->kind() == RegexKind::kEpsilon) {
      RETURN_IF_ERROR(WriteParticle(t, ct.content_model, "    ", ""));
    } else {
      out_ += "    <xsd:sequence>\n";
      RETURN_IF_ERROR(WriteParticle(t, ct.content_model, "      ", ""));
      out_ += "    </xsd:sequence>\n";
    }
    for (const auto& [name, attr] : ct.attributes) {
      out_ += "    <xsd:attribute name=\"" + name + "\"";
      if (attr.required) out_ += " use=\"required\"";
      if (attr.fixed) {
        out_ += " fixed=\"" + EscapeXmlText(*attr.fixed) + "\"";
      }
      if (IsPlainBuiltin(attr.type)) {
        out_ += " type=\"" + BuiltinName(attr.type.kind) + "\"/>\n";
      } else {
        out_ += ">\n";
        WriteInlineSimple(attr.type, "      ");
        out_ += "    </xsd:attribute>\n";
      }
    }
    if (ct.open_attributes) out_ += "    <xsd:anyAttribute/>\n";
    out_ += "  </xsd:complexType>\n";
    return Status::OK();
  }

  const Schema& schema_;
  std::string out_;
};

}  // namespace

Result<std::string> WriteXsd(const Schema& schema) {
  return Writer(schema).Write();
}

}  // namespace xmlreval::schema
