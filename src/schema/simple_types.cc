#include "schema/simple_types.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "common/result.h"
#include "common/string_util.h"

namespace xmlreval::schema {

namespace {
constexpr int64_t kScale = kDecimalScale;  // decimal values are value * 10^9
}

std::string_view AtomicKindName(AtomicKind kind) {
  switch (kind) {
    case AtomicKind::kString:
      return "string";
    case AtomicKind::kBoolean:
      return "boolean";
    case AtomicKind::kDecimal:
      return "decimal";
    case AtomicKind::kInteger:
      return "integer";
    case AtomicKind::kNonNegativeInteger:
      return "nonNegativeInteger";
    case AtomicKind::kPositiveInteger:
      return "positiveInteger";
    case AtomicKind::kDate:
      return "date";
  }
  return "unknown";
}

std::optional<AtomicKind> AtomicKindFromName(std::string_view name) {
  // Accept any namespace prefix ("xsd:", "xs:", ...) before the local name.
  size_t colon = name.rfind(':');
  if (colon != std::string_view::npos) name = name.substr(colon + 1);
  if (name == "string" || name == "normalizedString" || name == "token" ||
      name == "anyURI" || name == "NMTOKEN" || name == "Name" ||
      name == "ID" || name == "IDREF") {
    return AtomicKind::kString;
  }
  if (name == "boolean") return AtomicKind::kBoolean;
  if (name == "decimal" || name == "double" || name == "float") {
    return AtomicKind::kDecimal;
  }
  if (name == "integer" || name == "int" || name == "long" ||
      name == "short" || name == "byte") {
    return AtomicKind::kInteger;
  }
  if (name == "nonNegativeInteger" || name == "unsignedInt" ||
      name == "unsignedLong" || name == "unsignedShort" ||
      name == "unsignedByte") {
    return AtomicKind::kNonNegativeInteger;
  }
  if (name == "positiveInteger") return AtomicKind::kPositiveInteger;
  if (name == "date") return AtomicKind::kDate;
  return std::nullopt;
}

namespace {

bool IsNumericKind(AtomicKind kind) {
  switch (kind) {
    case AtomicKind::kDecimal:
    case AtomicKind::kInteger:
    case AtomicKind::kNonNegativeInteger:
    case AtomicKind::kPositiveInteger:
      return true;
    default:
      return false;
  }
}

// Lexical check + scaled value for numeric kinds. `integral` = reject
// fractional part.
Result<int64_t> ParseNumeric(std::string_view value, bool integral) {
  if (integral) {
    ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
    if (v > std::numeric_limits<int64_t>::max() / kScale ||
        v < std::numeric_limits<int64_t>::min() / kScale) {
      return Status::ParseError("integer out of supported range");
    }
    return v * kScale;
  }
  return ParseDecimalScaled(value);
}

bool IsValidDateLexical(std::string_view value) {
  // YYYY-MM-DD with basic range checks (no leap-year calendar validation;
  // lexical-space precision is all the revalidation semantics needs).
  if (value.size() != 10 || value[4] != '-' || value[7] != '-') return false;
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (value[i] < '0' || value[i] > '9') return false;
  }
  int month = (value[5] - '0') * 10 + (value[6] - '0');
  int day = (value[8] - '0') * 10 + (value[9] - '0');
  return month >= 1 && month <= 12 && day >= 1 && day <= 31;
}

// Intrinsic bounds of a numeric kind (scaled). Returns {lo, hi} with
// nullopt = unbounded.
NumericRange IntrinsicRange(AtomicKind kind) {
  switch (kind) {
    case AtomicKind::kNonNegativeInteger:
      return {int64_t{0}, std::nullopt};
    case AtomicKind::kPositiveInteger:
      return {int64_t{1} * kScale, std::nullopt};
    default:
      return {std::nullopt, std::nullopt};
  }
}

}  // namespace

bool EffectiveNumericRange(const SimpleType& type, NumericRange* out) {
  if (!IsNumericKind(type.kind)) return false;
  NumericRange r = IntrinsicRange(type.kind);
  const Facets& f = type.facets;
  auto tighten_lo = [&](int64_t candidate) {
    if (!r.lo || candidate > *r.lo) r.lo = candidate;
  };
  auto tighten_hi = [&](int64_t candidate) {
    if (!r.hi || candidate < *r.hi) r.hi = candidate;
  };
  if (f.min_inclusive) tighten_lo(*f.min_inclusive);
  if (f.max_inclusive) tighten_hi(*f.max_inclusive);
  // Exclusive bounds: for the integer kinds the nearest representable
  // neighbour is one unit away; for decimal we keep the open bound by
  // nudging one scaled ulp, which is sound for the subsumption/disjointness
  // directions we use it in.
  bool integral = type.kind != AtomicKind::kDecimal;
  int64_t ulp = integral ? kScale : 1;
  if (f.min_exclusive) tighten_lo(*f.min_exclusive + ulp);
  if (f.max_exclusive) tighten_hi(*f.max_exclusive - ulp);
  *out = r;
  return true;
}

Status ValidateSimpleValue(const SimpleType& type, std::string_view value) {
  const Facets& f = type.facets;
  // Unrestricted string: every literal is in the lexical space and no facet
  // can reject it (range facets never apply to kString; length/enumeration
  // are absent). This is the hottest shape in document corpora — bail out
  // before paying for the trim.
  if (type.kind == AtomicKind::kString && !f.length && !f.min_length &&
      !f.max_length && f.enumeration.empty()) {
    return Status::OK();
  }
  std::string_view trimmed = TrimWhitespace(value);

  auto fail = [&](std::string_view why) {
    return Status::InvalidArgument("value '" + std::string(trimmed) +
                                   "' is not a valid " +
                                   std::string(AtomicKindName(type.kind)) +
                                   ": " + std::string(why));
  };

  // Lexical space of the atomic kind.
  std::optional<int64_t> numeric;
  switch (type.kind) {
    case AtomicKind::kString:
      break;
    case AtomicKind::kBoolean:
      if (trimmed != "true" && trimmed != "false" && trimmed != "0" &&
          trimmed != "1") {
        return fail("not a boolean literal");
      }
      break;
    case AtomicKind::kDate:
      if (!IsValidDateLexical(trimmed)) return fail("not a date literal");
      break;
    case AtomicKind::kDecimal:
    case AtomicKind::kInteger:
    case AtomicKind::kNonNegativeInteger:
    case AtomicKind::kPositiveInteger: {
      bool integral = type.kind != AtomicKind::kDecimal;
      Result<int64_t> parsed = ParseNumeric(trimmed, integral);
      if (!parsed.ok()) return fail(parsed.status().message());
      numeric = *parsed;
      NumericRange intrinsic = IntrinsicRange(type.kind);
      if (intrinsic.lo && *numeric < *intrinsic.lo) {
        return fail("below the type's intrinsic lower bound");
      }
      break;
    }
  }

  // Range facets (numeric kinds only; facet parsing rejects them elsewhere).
  if (numeric) {
    if (f.min_inclusive && *numeric < *f.min_inclusive) {
      return fail("violates minInclusive");
    }
    if (f.max_inclusive && *numeric > *f.max_inclusive) {
      return fail("violates maxInclusive");
    }
    if (f.min_exclusive && *numeric <= *f.min_exclusive) {
      return fail("violates minExclusive");
    }
    if (f.max_exclusive && *numeric >= *f.max_exclusive) {
      return fail("violates maxExclusive");
    }
  }

  // Length facets apply to the (trimmed) lexical form.
  size_t len = trimmed.size();
  if (f.length && len != *f.length) return fail("violates length facet");
  if (f.min_length && len < *f.min_length) return fail("violates minLength");
  if (f.max_length && len > *f.max_length) return fail("violates maxLength");

  if (!f.enumeration.empty()) {
    bool found = std::find(f.enumeration.begin(), f.enumeration.end(),
                           trimmed) != f.enumeration.end();
    if (!found) return fail("not in the enumeration");
  }
  return Status::OK();
}

namespace {

// Is `a`'s lexical space (pre-facet) contained in `b`'s?
bool KindLexicallySubsumed(AtomicKind a, AtomicKind b) {
  if (a == b) return true;
  if (b == AtomicKind::kString) return true;  // string accepts any literal
  switch (a) {
    case AtomicKind::kPositiveInteger:
      return b == AtomicKind::kNonNegativeInteger ||
             b == AtomicKind::kInteger || b == AtomicKind::kDecimal;
    case AtomicKind::kNonNegativeInteger:
      return b == AtomicKind::kInteger || b == AtomicKind::kDecimal;
    case AtomicKind::kInteger:
      return b == AtomicKind::kDecimal;
    default:
      return false;
  }
}

// Are the lexical spaces (pre-facet) of `a` and `b` provably disjoint?
bool KindLexicallyDisjoint(AtomicKind a, AtomicKind b) {
  if (a == b) return false;
  if (a == AtomicKind::kString || b == AtomicKind::kString) return false;
  auto numeric = [](AtomicKind k) { return IsNumericKind(k); };
  if (numeric(a) && numeric(b)) return false;  // share e.g. "1"
  // boolean shares "0"/"1" with the numeric kinds.
  auto boolish = [](AtomicKind k) { return k == AtomicKind::kBoolean; };
  if ((boolish(a) && numeric(b)) || (boolish(b) && numeric(a))) return false;
  // date vs numeric / date vs boolean have no common literals.
  return true;
}

bool RangeContained(const NumericRange& inner, const NumericRange& outer) {
  if (outer.lo && (!inner.lo || *inner.lo < *outer.lo)) return false;
  if (outer.hi && (!inner.hi || *inner.hi > *outer.hi)) return false;
  return true;
}

bool RangesDisjoint(const NumericRange& x, const NumericRange& y) {
  if (x.hi && y.lo && *x.hi < *y.lo) return true;
  if (y.hi && x.lo && *y.hi < *x.lo) return true;
  return false;
}

}  // namespace

Result<std::string> MinimalValidValue(const SimpleType& type) {
  auto check = [&](std::string candidate) -> Result<std::string> {
    Status s = ValidateSimpleValue(type, candidate);
    if (!s.ok()) {
      return Status::FailedPrecondition(
          "no minimal value for " + std::string(AtomicKindName(type.kind)) +
          ": " + std::string(s.message()));
    }
    return candidate;
  };

  if (!type.facets.enumeration.empty()) {
    for (const std::string& v : type.facets.enumeration) {
      if (ValidateSimpleValue(type, v).ok()) return v;
    }
    return Status::FailedPrecondition(
        "enumeration has no value satisfying the other facets");
  }

  switch (type.kind) {
    case AtomicKind::kBoolean:
      return check("true");
    case AtomicKind::kDate:
      return check("2004-01-01");
    case AtomicKind::kString: {
      size_t len = 0;
      if (type.facets.length) {
        len = *type.facets.length;
      } else if (type.facets.min_length) {
        len = *type.facets.min_length;
      }
      return check(std::string(len, 'a'));
    }
    default: {
      NumericRange range;
      if (!EffectiveNumericRange(type, &range)) {
        return Status::Internal("numeric kind without a range");
      }
      if (range.lo && range.hi && *range.lo > *range.hi) {
        return Status::FailedPrecondition(
            "numeric facets leave an empty value space");
      }
      // Smallest magnitude first, then the nearest bound.
      int64_t scaled = 0;
      if (range.lo && *range.lo > 0) scaled = *range.lo;
      if (range.hi && *range.hi < 0) scaled = *range.hi;
      bool integral = type.kind != AtomicKind::kDecimal;
      int64_t whole = scaled / kScale;
      if (whole * kScale < scaled) ++whole;  // round up toward the range
      if (ValidateSimpleValue(type, std::to_string(whole)).ok()) {
        return std::to_string(whole);
      }
      if (!integral) {
        // Render the exact scaled bound, e.g. 0.5 for lo = 5*10^8.
        int64_t magnitude = scaled < 0 ? -scaled : scaled;
        std::string frac = std::to_string(magnitude % kScale);
        frac.insert(0, 9 - frac.size(), '0');
        while (frac.size() > 1 && frac.back() == '0') frac.pop_back();
        std::string exact = (scaled < 0 ? "-" : "") +
                            std::to_string(magnitude / kScale) + "." + frac;
        if (ValidateSimpleValue(type, exact).ok()) return exact;
      }
      return Status::FailedPrecondition(
          "could not construct a value inside the numeric facets");
    }
  }
}

bool SimpleSubsumed(const SimpleType& a, const SimpleType& b) {
  // Enumerated `a`: check every enumerated value against b directly — the
  // strongest and simplest complete test.
  if (!a.facets.enumeration.empty()) {
    for (const std::string& v : a.facets.enumeration) {
      if (!ValidateSimpleValue(a, v).ok()) continue;  // dead enum entry
      if (!ValidateSimpleValue(b, v).ok()) return false;
    }
    return true;
  }

  if (!KindLexicallySubsumed(a.kind, b.kind)) return false;

  // b's remaining facets must be implied by a's.
  const Facets& fb = b.facets;
  if (!fb.enumeration.empty()) return false;  // a is unenumerated ⇒ wider

  // Numeric ranges.
  NumericRange ra, rb;
  bool a_numeric = EffectiveNumericRange(a, &ra);
  bool b_numeric = EffectiveNumericRange(b, &rb);
  if (b_numeric) {
    if (!a_numeric) {
      // e.g. a = string, b ⊆ decimal — can't hold unless kinds subsumed,
      // which KindLexicallySubsumed already rejected.
      if (rb.lo || rb.hi) return false;
    } else if (!RangeContained(ra, rb)) {
      return false;
    }
  }

  // Length facets on b must be implied. Without length facets on a (or an
  // enumeration, handled above), a's lexical forms have unconstrained
  // length only for strings; for numeric/date kinds we conservatively
  // require b to have no length facets unless a carries identical ones.
  if (fb.length || fb.min_length || fb.max_length) {
    const Facets& fa = a.facets;
    bool implied = (fa.length && fb.length && *fa.length == *fb.length) ||
                   ((!fb.length) &&
                    (!fb.min_length ||
                     (fa.min_length && *fa.min_length >= *fb.min_length) ||
                     (fa.length && *fa.length >= *fb.min_length)) &&
                    (!fb.max_length ||
                     (fa.max_length && *fa.max_length <= *fb.max_length) ||
                     (fa.length && *fa.length <= *fb.max_length)));
    if (!implied) return false;
  }
  return true;
}

bool SimpleDisjoint(const SimpleType& a, const SimpleType& b) {
  // Enumerations give an exact test.
  if (!a.facets.enumeration.empty()) {
    for (const std::string& v : a.facets.enumeration) {
      if (ValidateSimpleValue(a, v).ok() && ValidateSimpleValue(b, v).ok()) {
        return false;
      }
    }
    return true;
  }
  if (!b.facets.enumeration.empty()) return SimpleDisjoint(b, a);

  if (KindLexicallyDisjoint(a.kind, b.kind)) return true;

  // Numeric vs numeric: disjoint ranges ⇒ disjoint types.
  NumericRange ra, rb;
  if (EffectiveNumericRange(a, &ra) && EffectiveNumericRange(b, &rb)) {
    if (RangesDisjoint(ra, rb)) return true;
  }

  // Length facets: non-overlapping length windows ⇒ disjoint.
  auto length_window = [](const Facets& f, uint32_t* lo, uint32_t* hi) {
    *lo = f.length ? *f.length : (f.min_length ? *f.min_length : 0);
    *hi = f.length ? *f.length
                   : (f.max_length ? *f.max_length
                                   : std::numeric_limits<uint32_t>::max());
  };
  uint32_t alo, ahi, blo, bhi;
  length_window(a.facets, &alo, &ahi);
  length_window(b.facets, &blo, &bhi);
  if (ahi < blo || bhi < alo) return true;

  return false;
}

}  // namespace xmlreval::schema
