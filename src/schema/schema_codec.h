// Binary round-trip for compiled schemas (the plan-cache payload).
//
// Encodes a BUILT Schema — names, simple types with facets, complex types
// with their compiled content-model DFAs, child typings, attributes, roots,
// productivity flags — against an alphabet that is serialized separately at
// the plan level (source and target schemas of a cast share one Alphabet,
// and the plan encodes it once). Lazily-determinized content models are
// materialized by Encode, so a warm-started process gets the full minimized
// table for free.
//
// Decode(borrow = true) aliases the DFA transition tables in the reader's
// buffer (mmap zero-copy); everything else — name maps, child typings,
// facets — is rebuilt as owned memory, since those are cold, small, and
// pointer-rich. All ids and symbols are validated against the decoded
// counts, so corrupt artifacts fail with kDataLoss instead of loading
// garbage.

#ifndef XMLREVAL_SCHEMA_SCHEMA_CODEC_H_
#define XMLREVAL_SCHEMA_SCHEMA_CODEC_H_

#include <memory>

#include "common/result.h"
#include "common/serde.h"
#include "schema/abstract_schema.h"

namespace xmlreval::schema {

class SchemaCodec {
 public:
  static void Encode(const Schema& schema, common::ByteWriter* w);

  /// `alphabet` is the already-decoded shared alphabet of the plan; symbol
  /// fields are validated against its size. See header comment for
  /// `borrow`.
  static Result<Schema> Decode(common::ByteReader* r,
                               std::shared_ptr<Alphabet> alphabet,
                               bool borrow);
};

}  // namespace xmlreval::schema

#endif  // XMLREVAL_SCHEMA_SCHEMA_CODEC_H_
