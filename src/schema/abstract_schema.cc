#include "schema/abstract_schema.h"

#include "automata/glushkov.h"
#include "automata/product.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace xmlreval::schema {

std::optional<TypeId> Schema::FindType(std::string_view name) const {
  auto it = types_by_name_.find(std::string(name));
  if (it == types_by_name_.end()) return std::nullopt;
  return it->second;
}

SchemaBuilder::SchemaBuilder(std::shared_ptr<Alphabet> alphabet) {
  XMLREVAL_CHECK(alphabet != nullptr, "SchemaBuilder requires an alphabet");
  schema_.alphabet_ = std::move(alphabet);
}

Result<TypeId> SchemaBuilder::Declare(std::string_view name) {
  if (built_) return Status::FailedPrecondition("schema already built");
  if (name.empty()) return Status::InvalidArgument("empty type name");
  std::string key(name);
  if (schema_.types_by_name_.count(key)) {
    return Status::InvalidArgument("duplicate type name '" + key + "'");
  }
  TypeId id = static_cast<TypeId>(schema_.names_.size());
  schema_.names_.push_back(key);
  schema_.types_by_name_.emplace(std::move(key), id);
  schema_.simple_.emplace_back();
  schema_.complex_.emplace_back();
  return id;
}

Result<TypeId> SchemaBuilder::DeclareSimpleType(std::string_view name,
                                                const SimpleType& type) {
  ASSIGN_OR_RETURN(TypeId id, Declare(name));
  schema_.simple_[id] = type;
  return id;
}

Result<TypeId> SchemaBuilder::DeclareComplexType(std::string_view name) {
  return Declare(name);
}

Status SchemaBuilder::SetContentModel(TypeId type, automata::RegexPtr regex) {
  if (built_) return Status::FailedPrecondition("schema already built");
  if (type >= schema_.num_types() || schema_.IsSimple(type)) {
    return Status::InvalidArgument("SetContentModel requires a complex type");
  }
  if (schema_.complex_[type].content_model) {
    return Status::FailedPrecondition("content model already set for type '" +
                                      schema_.TypeName(type) + "'");
  }
  schema_.complex_[type].content_model = std::move(regex);
  return Status::OK();
}

Status SchemaBuilder::SetContentModelDfa(TypeId type, automata::Dfa dfa,
                                         std::vector<Symbol> symbols_used) {
  if (built_) return Status::FailedPrecondition("schema already built");
  if (type >= schema_.num_types() || schema_.IsSimple(type)) {
    return Status::InvalidArgument(
        "SetContentModelDfa requires a complex type");
  }
  ComplexType& ct = schema_.complex_[type];
  if (ct.content_model || ct.dfa) {
    return Status::FailedPrecondition("content model already set for type '" +
                                      schema_.TypeName(type) + "'");
  }
  ct.dfa = std::move(dfa);
  ct.preset_symbols = std::move(symbols_used);
  return Status::OK();
}

Status SchemaBuilder::MapChild(TypeId type, std::string_view label,
                               TypeId child) {
  return MapChild(type, schema_.alphabet_->Intern(label), child);
}

Status SchemaBuilder::MapChild(TypeId type, Symbol label, TypeId child) {
  if (built_) return Status::FailedPrecondition("schema already built");
  if (type >= schema_.num_types() || schema_.IsSimple(type)) {
    return Status::InvalidArgument("MapChild requires a complex type");
  }
  if (child >= schema_.num_types()) {
    return Status::InvalidArgument("unknown child type id");
  }
  auto [it, fresh] = schema_.complex_[type].child_types.emplace(label, child);
  if (!fresh && it->second != child) {
    return Status::InvalidSchema(
        "label '" + schema_.alphabet_->Name(label) + "' mapped to two types ('" +
        schema_.TypeName(it->second) + "' and '" + schema_.TypeName(child) +
        "') within type '" + schema_.TypeName(type) +
        "' — violates consistent element declarations");
  }
  return Status::OK();
}

Status SchemaBuilder::DeclareAttribute(TypeId type, std::string_view name,
                                       const SimpleType& attr_type,
                                       bool required,
                                       std::optional<std::string> fixed) {
  if (built_) return Status::FailedPrecondition("schema already built");
  if (type >= schema_.num_types() || schema_.IsSimple(type)) {
    return Status::InvalidArgument(
        "DeclareAttribute requires a complex type");
  }
  if (!IsValidXmlName(name)) {
    return Status::InvalidArgument("invalid attribute name '" +
                                   std::string(name) + "'");
  }
  if (fixed) {
    Status valid = ValidateSimpleValue(attr_type, *fixed);
    if (!valid.ok()) {
      return Status::InvalidSchema("fixed value of attribute '" +
                                   std::string(name) + "' is invalid: " +
                                   std::string(valid.message()));
    }
  }
  auto [it, fresh] = schema_.complex_[type].attributes.emplace(
      std::string(name),
      AttributeDecl{attr_type, required, std::move(fixed)});
  if (!fresh) {
    return Status::InvalidSchema("attribute '" + std::string(name) +
                                 "' declared twice on type '" +
                                 schema_.TypeName(type) + "'");
  }
  return Status::OK();
}

Status SchemaBuilder::SetOpenAttributes(TypeId type) {
  if (built_) return Status::FailedPrecondition("schema already built");
  if (type >= schema_.num_types() || schema_.IsSimple(type)) {
    return Status::InvalidArgument(
        "SetOpenAttributes requires a complex type");
  }
  schema_.complex_[type].open_attributes = true;
  return Status::OK();
}

Status ValidateTypeAttributes(const ComplexType& type,
                              const std::vector<xml::Attribute>& attributes) {
  if (type.open_attributes) return Status::OK();
  for (const xml::Attribute& attr : attributes) {
    auto it = type.attributes.find(attr.name);
    if (it == type.attributes.end()) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' is not declared");
    }
    Status value = ValidateSimpleValue(it->second.type, attr.value);
    if (!value.ok()) {
      return value.WithContext("attribute '" + attr.name + "'");
    }
    if (it->second.fixed &&
        TrimWhitespace(attr.value) != TrimWhitespace(*it->second.fixed)) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' must have the fixed value '" +
                                     *it->second.fixed + "'");
    }
  }
  for (const auto& [name, decl] : type.attributes) {
    if (!decl.required) continue;
    bool present = false;
    for (const xml::Attribute& attr : attributes) {
      if (attr.name == name) {
        present = true;
        break;
      }
    }
    if (!present) {
      return Status::InvalidArgument("required attribute '" + name +
                                     "' is missing");
    }
  }
  return Status::OK();
}

Status SchemaBuilder::AddRoot(std::string_view label, TypeId type) {
  if (built_) return Status::FailedPrecondition("schema already built");
  if (type >= schema_.num_types()) {
    return Status::InvalidArgument("unknown root type id");
  }
  Symbol sym = schema_.alphabet_->Intern(label);
  auto [it, fresh] = schema_.roots_.emplace(sym, type);
  if (!fresh && it->second != type) {
    return Status::InvalidSchema("root label '" + std::string(label) +
                                 "' mapped to two types");
  }
  return Status::OK();
}

Result<Schema> SchemaBuilder::Build(const BuildOptions& options) {
  if (built_) return Status::FailedPrecondition("schema already built");
  built_ = true;
  Schema& s = schema_;
  size_t alphabet_size = s.alphabet_->size();
  size_t n = s.num_types();

  // Compile every complex type's content model; verify Σ_τ ⊆ dom(types_τ).
  for (TypeId t = 0; t < n; ++t) {
    if (s.IsSimple(t)) continue;
    ComplexType& ct = s.complex_[t];
    if (!ct.content_model && !ct.dfa) {
      return Status::InvalidSchema("complex type '" + s.TypeName(t) +
                                   "' has no content model");
    }
    std::vector<Symbol> used = ct.content_model
                                   ? ct.content_model->SymbolsUsed()
                                   : ct.preset_symbols;
    for (Symbol sym : used) {
      if (!ct.child_types.count(sym)) {
        return Status::InvalidSchema(
            "type '" + s.TypeName(t) + "': label '" + s.alphabet_->Name(sym) +
            "' appears in the content model but has no child type (types_τ)");
      }
    }
    bool lazy = options.lazy_dfa_min_alphabet != 0 &&
                alphabet_size >= options.lazy_dfa_min_alphabet &&
                ct.content_model != nullptr;
    if (lazy) {
      // Large alphabet: keep the Glushkov NFA and defer subset
      // construction to first use (automata/lazy_dfa.h). The determinism
      // check is on the expression, so it needs no DFA.
      Result<automata::RegexPtr> expanded =
          automata::ExpandRepeats(ct.content_model);
      if (!expanded.ok()) {
        return expanded.status().WithContext("type '" + s.TypeName(t) + "'");
      }
      Result<automata::GlushkovResult> glushkov =
          automata::BuildGlushkov(*expanded, alphabet_size);
      if (!glushkov.ok()) {
        return glushkov.status().WithContext("type '" + s.TypeName(t) + "'");
      }
      if (options.require_deterministic && !glushkov->one_unambiguous) {
        return Status::InvalidSchema(
            "type '" + s.TypeName(t) +
            "': content model is not deterministic (violates unique "
            "particle attribution)");
      }
      ct.lazy_dfa = std::make_shared<automata::LazyDfa>(
          std::move(glushkov->nfa));
    } else if (ct.content_model) {
      Result<automata::Dfa> dfa =
          automata::CompileRegex(ct.content_model, alphabet_size,
                                 options.require_deterministic);
      if (!dfa.ok()) {
        return dfa.status().WithContext("type '" + s.TypeName(t) + "'");
      }
      ct.dfa = std::move(dfa).value();
    } else {
      // Preset DFA (e.g. an <all> group): widen to the final alphabet.
      ct.dfa = ct.dfa->PaddedTo(alphabet_size).Minimize();
    }
  }

  // Productivity fixpoint (§3): simple types are productive; a complex type
  // is productive iff its content model accepts some string over the
  // labels whose child types are productive.
  s.productive_.assign(n, false);
  for (TypeId t = 0; t < n; ++t) {
    if (s.IsSimple(t)) s.productive_[t] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (TypeId t = 0; t < n; ++t) {
      if (s.productive_[t] || s.IsSimple(t)) continue;
      const ComplexType& ct = s.complex_[t];
      std::vector<bool> allowed(alphabet_size, false);
      for (const auto& [sym, child] : ct.child_types) {
        if (s.productive_[child]) allowed[sym] = true;
      }
      bool nonempty =
          ct.dfa ? automata::LanguageNonEmptyFiltered(*ct.dfa, allowed)
                 : automata::NfaLanguageNonEmptyFiltered(ct.lazy_dfa->nfa(),
                                                         allowed);
      if (nonempty) {
        s.productive_[t] = true;
        changed = true;
      }
    }
  }

  if (options.prune_nonproductive) {
    // The §3 rewrite: regexp_τ := regexp_τ ∩ ProdLabels_τ*, realized on the
    // compiled DFA by rerouting transitions on non-productive labels to a
    // fresh sink, then re-minimizing.
    for (TypeId t = 0; t < n; ++t) {
      if (s.IsSimple(t) || !s.productive_[t]) continue;
      ComplexType& ct = s.complex_[t];
      std::vector<bool> allowed(alphabet_size, false);
      bool any_disallowed = false;
      for (const auto& [sym, child] : ct.child_types) {
        if (s.productive_[child]) {
          allowed[sym] = true;
        }
      }
      if (ct.lazy_dfa) {
        // The lazy rewrite: disallowed symbols route to the sink during
        // row expansion. Symbols outside Σ_τ have no NFA transitions and
        // land in the sink either way, so one mask covers both cases.
        for (const auto& [sym, child] : ct.child_types) {
          if (!s.productive_[child]) {
            any_disallowed = true;
            break;
          }
        }
        if (any_disallowed) ct.lazy_dfa->RestrictTo(std::move(allowed));
        continue;
      }
      const automata::Dfa& old = *ct.dfa;
      for (automata::StateId q = 0; q < old.num_states() && !any_disallowed;
           ++q) {
        for (Symbol sym = 0; sym < alphabet_size; ++sym) {
          // A disallowed symbol matters only if it currently leads anywhere
          // useful; rerouting to the sink is harmless otherwise, so just
          // check whether any disallowed symbol exists in Σ_τ.
          if (!allowed[sym] && ct.child_types.count(sym)) {
            any_disallowed = true;
            break;
          }
        }
      }
      if (!any_disallowed) continue;
      size_t sink = old.num_states();
      automata::Dfa rewritten(old.num_states() + 1, alphabet_size);
      rewritten.set_start_state(old.start_state());
      for (automata::StateId q = 0; q < old.num_states(); ++q) {
        rewritten.SetAccepting(q, old.IsAccepting(q));
        for (Symbol sym = 0; sym < alphabet_size; ++sym) {
          bool ok = allowed[sym] || !ct.child_types.count(sym);
          // Labels outside Σ_τ already reject in `old`; keep their edges.
          rewritten.SetTransition(
              q, sym,
              ok ? old.Next(q, sym) : static_cast<automata::StateId>(sink));
        }
      }
      for (Symbol sym = 0; sym < alphabet_size; ++sym) {
        rewritten.SetTransition(static_cast<automata::StateId>(sink), sym,
                                static_cast<automata::StateId>(sink));
      }
      ct.dfa = rewritten.Minimize();
    }
  }

  // Densify types_τ so Schema::ChildType is an array read on the validator
  // hot path. Sized to the alphabet as of Build(); later-interned symbols
  // index past the end and correctly read as kInvalidType.
  for (TypeId t = 0; t < n; ++t) {
    if (s.IsSimple(t)) continue;
    ComplexType& ct = s.complex_[t];
    ct.child_types_dense.assign(alphabet_size, kInvalidType);
    for (const auto& [sym, child] : ct.child_types) {
      ct.child_types_dense[sym] = child;
    }
  }

  // Roots must be productive, or the schema accepts nothing through them.
  for (const auto& [sym, t] : s.roots_) {
    if (!s.productive_[t]) {
      return Status::InvalidSchema("root label '" + s.alphabet_->Name(sym) +
                                   "' has non-productive type '" +
                                   s.TypeName(t) + "'");
    }
  }

  return std::move(schema_);
}

}  // namespace xmlreval::schema
