// XSD writer: renders an abstract XML Schema back to XML Schema text.
//
// The inverse of ParseXsd over the supported subset. Round-tripping is
// semantically lossless — the property suite checks that every type of a
// written-and-reparsed schema is MUTUALLY subsumed with its original —
// though not syntactically (anonymous types come back named, DTD-style
// schemas are rendered as XSD).
//
// Limitations: complex types whose content model was supplied as a preset
// DFA (<all> groups) have no regular-expression rendering and are rejected
// with kUnsupported; DTD-derived open-attribute types are rendered with
// <anyAttribute/>.

#ifndef XMLREVAL_SCHEMA_XSD_WRITER_H_
#define XMLREVAL_SCHEMA_XSD_WRITER_H_

#include <string>

#include "common/result.h"
#include "schema/abstract_schema.h"

namespace xmlreval::schema {

/// Renders `schema` as XSD text parseable by ParseXsd.
Result<std::string> WriteXsd(const Schema& schema);

}  // namespace xmlreval::schema

#endif  // XMLREVAL_SCHEMA_XSD_WRITER_H_
