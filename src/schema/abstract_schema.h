// Abstract XML Schema — the paper's 4-tuple (Σ, T, ρ, R) from Section 3.
//
//   * Σ is an interned Alphabet, SHARED between the source and target
//     schemas of a cast (the paper assumes a common alphabet),
//   * T is a dense set of TypeIds,
//   * ρ assigns each type either a SimpleType (atomic base + facets) or a
//     complex declaration: a content-model regular expression regexp_τ
//     (compiled to a complete minimal DFA) plus the child-typing function
//     types_τ : Σ_τ → T,
//   * R maps root labels to types.
//
// Schemas are built through SchemaBuilder, which performs the §3 static
// checks: every label in regexp_τ must be typed by types_τ, content models
// must be 1-unambiguous (XML's determinism requirement; the paper's
// optimality result depends on it), and the productivity analysis runs with
// the DFA-rewrite so that only productive behaviour remains (the paper's
// "straightforward algorithm for converting a schema ... into one that
// contains only productive types").

#ifndef XMLREVAL_SCHEMA_ABSTRACT_SCHEMA_H_
#define XMLREVAL_SCHEMA_ABSTRACT_SCHEMA_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/alphabet.h"
#include "automata/dfa.h"
#include "automata/lazy_dfa.h"
#include "automata/regex.h"
#include "common/result.h"
#include "schema/simple_types.h"
#include "xml/tree.h"

namespace xmlreval::schema {

using TypeId = uint32_t;
inline constexpr TypeId kInvalidType = 0xFFFFFFFFu;

using automata::Alphabet;
using automata::Symbol;

/// One attribute declaration on a complex type. Attributes extend the
/// paper's structural model (which scopes them out); they participate in
/// subsumption and disjointness — see core/relations.cc — and are checked
/// by every validator.
struct AttributeDecl {
  SimpleType type;
  bool required = false;
  /// XSD `fixed`: when the attribute appears, its value must equal this.
  std::optional<std::string> fixed;
};

/// Declaration of one complex type: regexp_τ, types_τ, and attributes.
struct ComplexType {
  automata::RegexPtr content_model;
  /// Compiled, minimized, complete DFA for L(regexp_τ) over the full shared
  /// alphabet (labels outside Σ_τ lead to a rejecting sink). After the
  /// productivity rewrite this recognizes L(regexp_τ) ∩ ProdLabels_τ*.
  /// Unset when the type compiled lazily — see `lazy_dfa`.
  std::optional<automata::Dfa> dfa;
  /// Lazily-determinized content model, used instead of `dfa` when the
  /// builder ran with lazy_dfa_min_alphabet and the alphabet crossed the
  /// threshold. Shared so Schema copies reuse one memoized construction;
  /// consumers needing a full table call Schema::ContentDfa, which
  /// materializes (and minimizes) on first use.
  std::shared_ptr<automata::LazyDfa> lazy_dfa;
  /// types_τ : Σ_τ → T.
  std::unordered_map<Symbol, TypeId> child_types;
  /// Dense types_τ table filled by SchemaBuilder::Build(): indexed by
  /// Symbol, kInvalidType for σ ∉ Σ_τ. Sized to the alphabet at build time,
  /// so symbols interned later (and kUnboundSymbol) fall off the end and
  /// read as kInvalidType — exactly the right answer.
  std::vector<TypeId> child_types_dense;
  /// Σ_τ for DFA-preset content models (empty when regexp-derived).
  std::vector<Symbol> preset_symbols;
  /// Declared attributes by name. Undeclared attributes are invalid;
  /// required ones must be present.
  std::unordered_map<std::string, AttributeDecl> attributes;
  /// Open attribute policy: any attribute (of any value) is permitted and
  /// none is required. DTD-derived schemas are open (ATTLIST constraints
  /// are not modeled); XSD types are closed unless they carry
  /// <anyAttribute>. Open types skip attribute checking everywhere,
  /// including in the subsumption/disjointness analysis.
  bool open_attributes = false;
};

/// Checks an element's attributes against a complex type's declarations:
/// every attribute must be declared with a valid value, every required
/// attribute must be present. Open types accept anything.
Status ValidateTypeAttributes(const ComplexType& type,
                              const std::vector<xml::Attribute>& attributes);

class Schema {
 public:
  const std::shared_ptr<Alphabet>& alphabet() const { return alphabet_; }

  size_t num_types() const { return names_.size(); }
  const std::string& TypeName(TypeId t) const { return names_[t]; }

  /// Looks a type up by name.
  std::optional<TypeId> FindType(std::string_view name) const;

  bool IsSimple(TypeId t) const { return simple_[t].has_value(); }
  bool IsComplex(TypeId t) const { return !IsSimple(t); }

  const SimpleType& simple_type(TypeId t) const { return *simple_[t]; }
  const ComplexType& complex_type(TypeId t) const { return complex_[t]; }

  /// The compiled content-model DFA of a complex type. For lazily-compiled
  /// types this forces (and memoizes) full determinization + minimization.
  const automata::Dfa& ContentDfa(TypeId t) const {
    const ComplexType& ct = complex_[t];
    return ct.dfa ? *ct.dfa : ct.lazy_dfa->Materialized();
  }

  /// The lazy content model of a complex type, or nullptr when the type was
  /// compiled eagerly. Validators step this directly (never materializing)
  /// when present.
  const automata::LazyDfa* LazyContentDfa(TypeId t) const {
    return complex_[t].lazy_dfa.get();
  }

  /// ε ∈ L(regexp_τ)? Cheap for both eager and lazy types (never forces
  /// materialization).
  bool ContentAcceptsEmpty(TypeId t) const {
    const ComplexType& ct = complex_[t];
    return ct.dfa ? ct.dfa->AcceptsEmpty() : ct.lazy_dfa->AcceptsEmpty();
  }

  /// types_τ(σ), or kInvalidType when σ ∉ Σ_τ. A dense array read — the
  /// validators call this once per element visit.
  TypeId ChildType(TypeId t, Symbol label) const {
    const auto& dense = complex_[t].child_types_dense;
    return label < dense.size() ? dense[label] : kInvalidType;
  }

  /// R(σ): the type assigned to root label σ, or kInvalidType.
  TypeId RootType(Symbol label) const {
    auto it = roots_.find(label);
    return it == roots_.end() ? kInvalidType : it->second;
  }
  const std::unordered_map<Symbol, TypeId>& roots() const { return roots_; }

  /// Whether valid(τ) ≠ ∅ (§3's productivity analysis).
  bool IsProductive(TypeId t) const { return productive_[t]; }

 private:
  friend class SchemaBuilder;
  friend class SchemaCodec;

  std::shared_ptr<Alphabet> alphabet_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, TypeId> types_by_name_;
  std::vector<std::optional<SimpleType>> simple_;
  std::vector<ComplexType> complex_;  // indexed by TypeId; empty slot for simple
  std::unordered_map<Symbol, TypeId> roots_;
  std::vector<bool> productive_;
};

/// Builder with two-phase declaration so recursive types work: declare all
/// types first, then attach content models / child typings, then Build().
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::shared_ptr<Alphabet> alphabet);

  /// Declares a simple type. Names must be unique within the schema.
  Result<TypeId> DeclareSimpleType(std::string_view name,
                                   const SimpleType& type);

  /// Declares a complex type; content model and child types are attached
  /// afterwards.
  Result<TypeId> DeclareComplexType(std::string_view name);

  /// Sets regexp_τ for a declared complex type.
  Status SetContentModel(TypeId type, automata::RegexPtr regex);

  /// Sets a precompiled content-model DFA instead of a regular expression.
  /// Used for constructs outside 1-unambiguous regex syntax — the XSD
  /// <all> group compiles to a subset (bitmask) DFA directly. The DFA must
  /// be complete over the alphabet AS OF THIS CALL; Build() pads it to the
  /// final alphabet. `symbols_used` lists the labels the model can emit
  /// (the Σ_τ used for the types_τ coverage check).
  Status SetContentModelDfa(TypeId type, automata::Dfa dfa,
                            std::vector<Symbol> symbols_used);

  /// Adds types_τ(label) = child. Each label maps to one type (the XML
  /// Schema "consistent element declarations" rule); re-mapping a label to
  /// a different type is an error.
  Status MapChild(TypeId type, std::string_view label, TypeId child);
  Status MapChild(TypeId type, Symbol label, TypeId child);

  /// Declares an attribute on a complex type. `fixed`, when given, must
  /// itself be a valid value of `attr_type`.
  Status DeclareAttribute(TypeId type, std::string_view name,
                          const SimpleType& attr_type, bool required,
                          std::optional<std::string> fixed = std::nullopt);

  /// Marks a complex type as accepting arbitrary attributes.
  Status SetOpenAttributes(TypeId type);

  /// Adds R(label) = type.
  Status AddRoot(std::string_view label, TypeId type);

  struct BuildOptions {
    /// Reject content models that are not 1-unambiguous.
    bool require_deterministic = true;
    /// Apply the §3 rewrite restricting each content model to productive
    /// labels. When off, non-productive types are only flagged.
    bool prune_nonproductive = true;
    /// When non-zero and the shared alphabet has at least this many symbols
    /// at Build() time, regex content models are determinized LAZILY: the
    /// Glushkov NFA is kept and subset-construction rows are expanded only
    /// as the validator reaches them (automata/lazy_dfa.h). 0 disables.
    /// Preset-DFA content models (<all> groups) always compile eagerly.
    size_t lazy_dfa_min_alphabet = 0;
  };

  /// Validates the declarations, compiles all content models, runs the
  /// productivity analysis, and produces an immutable Schema.
  Result<Schema> Build(const BuildOptions& options);
  Result<Schema> Build() { return Build(BuildOptions{}); }

 private:
  Result<TypeId> Declare(std::string_view name);

  Schema schema_;
  bool built_ = false;
};

}  // namespace xmlreval::schema

#endif  // XMLREVAL_SCHEMA_ABSTRACT_SCHEMA_H_
