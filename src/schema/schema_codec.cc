#include "schema/schema_codec.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "automata/dfa_serialize.h"

namespace xmlreval::schema {

namespace {

using automata::DfaCodec;
using automata::RegexCodec;
using common::ByteReader;
using common::ByteWriter;

Status Corrupt(const char* what) {
  return Status::DataLoss(std::string("plan artifact: ") + what);
}

// Facets: presence bitmask, then the present values in field order.
enum FacetBit : uint8_t {
  kMinInclusive = 1u << 0,
  kMaxInclusive = 1u << 1,
  kMinExclusive = 1u << 2,
  kMaxExclusive = 1u << 3,
  kLength = 1u << 4,
  kMinLength = 1u << 5,
  kMaxLength = 1u << 6,
};

void EncodeSimpleType(const SimpleType& t, ByteWriter* w) {
  w->U8(static_cast<uint8_t>(t.kind));
  const Facets& f = t.facets;
  uint8_t bits = 0;
  if (f.min_inclusive) bits |= kMinInclusive;
  if (f.max_inclusive) bits |= kMaxInclusive;
  if (f.min_exclusive) bits |= kMinExclusive;
  if (f.max_exclusive) bits |= kMaxExclusive;
  if (f.length) bits |= kLength;
  if (f.min_length) bits |= kMinLength;
  if (f.max_length) bits |= kMaxLength;
  w->U8(bits);
  if (f.min_inclusive) w->I64(*f.min_inclusive);
  if (f.max_inclusive) w->I64(*f.max_inclusive);
  if (f.min_exclusive) w->I64(*f.min_exclusive);
  if (f.max_exclusive) w->I64(*f.max_exclusive);
  if (f.length) w->U32(*f.length);
  if (f.min_length) w->U32(*f.min_length);
  if (f.max_length) w->U32(*f.max_length);
  w->U32(static_cast<uint32_t>(f.enumeration.size()));
  for (const std::string& v : f.enumeration) w->String(v);
}

Result<SimpleType> DecodeSimpleType(ByteReader* r) {
  SimpleType t;
  uint8_t kind = r->U8();
  if (!r->ok() || kind > static_cast<uint8_t>(AtomicKind::kDate)) {
    return Corrupt("invalid atomic kind");
  }
  t.kind = static_cast<AtomicKind>(kind);
  uint8_t bits = r->U8();
  Facets& f = t.facets;
  if (bits & kMinInclusive) f.min_inclusive = r->I64();
  if (bits & kMaxInclusive) f.max_inclusive = r->I64();
  if (bits & kMinExclusive) f.min_exclusive = r->I64();
  if (bits & kMaxExclusive) f.max_exclusive = r->I64();
  if (bits & kLength) f.length = r->U32();
  if (bits & kMinLength) f.min_length = r->U32();
  if (bits & kMaxLength) f.max_length = r->U32();
  uint32_t n_enum = r->U32();
  if (!r->ok() || n_enum > r->remaining()) {
    return Corrupt("truncated simple type");
  }
  f.enumeration.reserve(n_enum);
  for (uint32_t i = 0; i < n_enum; ++i) {
    f.enumeration.emplace_back(r->String());
  }
  if (!r->ok()) return Corrupt("truncated enumeration facet");
  return t;
}

}  // namespace

void SchemaCodec::Encode(const Schema& schema, ByteWriter* w) {
  const size_t n = schema.num_types();
  w->U32(static_cast<uint32_t>(n));
  for (TypeId t = 0; t < n; ++t) {
    w->String(schema.TypeName(t));
    if (schema.IsSimple(t)) {
      w->U8(0);
      EncodeSimpleType(schema.simple_type(t), w);
      continue;
    }
    w->U8(1);
    const ComplexType& ct = schema.complex_type(t);
    w->U8(ct.content_model ? 1 : 0);
    if (ct.content_model) RegexCodec::Encode(ct.content_model, w);
    // ContentDfa materializes lazily-compiled types, so the plan always
    // carries the full minimized table.
    w->AlignTo(8);
    DfaCodec::Encode(schema.ContentDfa(t), w);
    // Hash maps iterate in unspecified order; sort so identical schemas
    // encode to identical bytes (plan files are content-comparable).
    std::vector<std::pair<Symbol, TypeId>> children(ct.child_types.begin(),
                                                    ct.child_types.end());
    std::sort(children.begin(), children.end());
    w->U32(static_cast<uint32_t>(children.size()));
    for (const auto& [sym, child] : children) {
      w->U32(sym);
      w->U32(child);
    }
    w->U32(static_cast<uint32_t>(ct.child_types_dense.size()));
    w->AlignTo(8);
    w->Bytes(ct.child_types_dense.data(),
             ct.child_types_dense.size() * sizeof(TypeId));
    w->U32(static_cast<uint32_t>(ct.preset_symbols.size()));
    for (Symbol s : ct.preset_symbols) w->U32(s);
    std::vector<const std::string*> attr_names;
    attr_names.reserve(ct.attributes.size());
    for (const auto& [name, decl] : ct.attributes) attr_names.push_back(&name);
    std::sort(attr_names.begin(), attr_names.end(),
              [](const std::string* a, const std::string* b) { return *a < *b; });
    w->U32(static_cast<uint32_t>(attr_names.size()));
    for (const std::string* name : attr_names) {
      const AttributeDecl& decl = ct.attributes.at(*name);
      w->String(*name);
      EncodeSimpleType(decl.type, w);
      w->U8(decl.required ? 1 : 0);
      w->U8(decl.fixed ? 1 : 0);
      if (decl.fixed) w->String(*decl.fixed);
    }
    w->U8(ct.open_attributes ? 1 : 0);
  }
  std::vector<std::pair<Symbol, TypeId>> roots(schema.roots().begin(),
                                               schema.roots().end());
  std::sort(roots.begin(), roots.end());
  w->U32(static_cast<uint32_t>(roots.size()));
  for (const auto& [sym, t] : roots) {
    w->U32(sym);
    w->U32(t);
  }
  for (TypeId t = 0; t < n; ++t) w->U8(schema.IsProductive(t) ? 1 : 0);
  w->AlignTo(8);
}

Result<Schema> SchemaCodec::Decode(ByteReader* r,
                                   std::shared_ptr<Alphabet> alphabet,
                                   bool borrow) {
  const size_t alphabet_size = alphabet->size();
  Schema schema;
  schema.alphabet_ = std::move(alphabet);

  uint32_t n = r->U32();
  if (!r->ok() || n > r->remaining()) return Corrupt("implausible type count");
  schema.names_.reserve(n);
  schema.simple_.reserve(n);
  schema.complex_.reserve(n);
  for (TypeId t = 0; t < n; ++t) {
    std::string name(r->String());
    uint8_t tag = r->U8();
    if (!r->ok() || tag > 1 || name.empty()) {
      return Corrupt("malformed type record");
    }
    if (!schema.types_by_name_.emplace(name, t).second) {
      return Corrupt("duplicate type name");
    }
    schema.names_.push_back(std::move(name));
    schema.simple_.emplace_back();
    schema.complex_.emplace_back();
    if (tag == 0) {
      ASSIGN_OR_RETURN(SimpleType st, DecodeSimpleType(r));
      schema.simple_[t] = std::move(st);
      continue;
    }
    ComplexType& ct = schema.complex_[t];
    uint8_t has_regex = r->U8();
    if (!r->ok() || has_regex > 1) return Corrupt("malformed content model");
    if (has_regex) {
      ASSIGN_OR_RETURN(ct.content_model, RegexCodec::Decode(r, alphabet_size));
    }
    r->AlignTo(8);
    ASSIGN_OR_RETURN(automata::Dfa dfa, DfaCodec::Decode(r, borrow));
    if (dfa.alphabet_size() > alphabet_size) {
      return Corrupt("content DFA wider than the alphabet");
    }
    ct.dfa = std::move(dfa);
    uint32_t n_children = r->U32();
    if (!r->ok() || n_children > r->remaining() / 8) {
      return Corrupt("truncated child typing");
    }
    for (uint32_t i = 0; i < n_children; ++i) {
      Symbol sym = r->U32();
      TypeId child = r->U32();
      if (!r->ok() || sym >= alphabet_size || child >= n) {
        return Corrupt("child typing out of range");
      }
      ct.child_types.emplace(sym, child);
    }
    uint32_t dense_size = r->U32();
    if (!r->ok() || dense_size > alphabet_size) {
      return Corrupt("implausible dense child table");
    }
    r->AlignTo(8);
    const uint8_t* dense_raw = r->Raw(dense_size * sizeof(TypeId));
    if (!r->ok()) return Corrupt("truncated dense child table");
    ct.child_types_dense.resize(dense_size);
    std::memcpy(ct.child_types_dense.data(), dense_raw,
                dense_size * sizeof(TypeId));
    for (TypeId id : ct.child_types_dense) {
      if (id != kInvalidType && id >= n) {
        return Corrupt("dense child type out of range");
      }
    }
    uint32_t n_preset = r->U32();
    if (!r->ok() || n_preset > alphabet_size) {
      return Corrupt("implausible preset symbol list");
    }
    for (uint32_t i = 0; i < n_preset; ++i) {
      Symbol s = r->U32();
      if (!r->ok() || s >= alphabet_size) {
        return Corrupt("preset symbol out of range");
      }
      ct.preset_symbols.push_back(s);
    }
    uint32_t n_attrs = r->U32();
    if (!r->ok() || n_attrs > r->remaining()) {
      return Corrupt("truncated attribute list");
    }
    for (uint32_t i = 0; i < n_attrs; ++i) {
      std::string attr_name(r->String());
      ASSIGN_OR_RETURN(SimpleType attr_type, DecodeSimpleType(r));
      uint8_t required = r->U8();
      uint8_t has_fixed = r->U8();
      if (!r->ok() || required > 1 || has_fixed > 1 || attr_name.empty()) {
        return Corrupt("malformed attribute record");
      }
      AttributeDecl decl{std::move(attr_type), required != 0, std::nullopt};
      if (has_fixed) {
        decl.fixed = std::string(r->String());
        if (!r->ok()) return Corrupt("truncated attribute record");
      }
      if (!ct.attributes.emplace(std::move(attr_name), std::move(decl))
               .second) {
        return Corrupt("duplicate attribute");
      }
    }
    uint8_t open = r->U8();
    if (!r->ok() || open > 1) return Corrupt("malformed attribute policy");
    ct.open_attributes = open != 0;
  }

  uint32_t n_roots = r->U32();
  if (!r->ok() || n_roots > r->remaining() / 8) {
    return Corrupt("truncated root map");
  }
  for (uint32_t i = 0; i < n_roots; ++i) {
    Symbol sym = r->U32();
    TypeId t = r->U32();
    if (!r->ok() || sym >= alphabet_size || t >= n) {
      return Corrupt("root mapping out of range");
    }
    schema.roots_.emplace(sym, t);
  }
  schema.productive_.resize(n);
  for (TypeId t = 0; t < n; ++t) {
    uint8_t p = r->U8();
    if (!r->ok() || p > 1) return Corrupt("malformed productivity flags");
    schema.productive_[t] = p != 0;
  }
  r->AlignTo(8);
  if (!r->ok()) return Corrupt("truncated schema");
  return schema;
}

}  // namespace xmlreval::schema
