// Simple (atomic) types and restriction facets.
//
// The paper merges all simple types into one χ type "for simplicity of
// exposition" and notes that handling the real XML Schema atomic types and
// their restrictions "is a straightforward extension" — experiment 2 (the
// quantity maxExclusive 200 → 100 cast) depends on it. This module is that
// extension: a small atomic-type lattice (string ⊇ everything lexically;
// positiveInteger ⊆ nonNegativeInteger ⊆ integer ⊆ decimal; boolean; date)
// with range/length/enumeration facets, plus sound subsumption and
// disjointness tests used to bootstrap R_sub and R_nondis.
//
// Semantics: valid(τ) for a simple τ is the set of trees n1(n2()) whose χ
// leaf's text is in the LEXICAL space of τ after facet restriction. The
// subsumption/disjointness tests are conservative in the sound direction —
// Subsumed only returns true when provable, Disjoint only when provable —
// so cast validation stays exact (a "don't know" merely costs a traversal).

#ifndef XMLREVAL_SCHEMA_SIMPLE_TYPES_H_
#define XMLREVAL_SCHEMA_SIMPLE_TYPES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace xmlreval::schema {

enum class AtomicKind : uint8_t {
  kString,
  kBoolean,
  kDecimal,
  kInteger,
  kNonNegativeInteger,
  kPositiveInteger,
  kDate,
};

std::string_view AtomicKindName(AtomicKind kind);

/// Parses the xsd:NAME of a supported atomic type ("xsd:" prefix optional).
std::optional<AtomicKind> AtomicKindFromName(std::string_view name);

/// Restriction facets. Numeric bounds are decimal values scaled by 10^9
/// (see ParseDecimalScaled) so comparisons are exact.
struct Facets {
  std::optional<int64_t> min_inclusive;
  std::optional<int64_t> max_inclusive;
  std::optional<int64_t> min_exclusive;
  std::optional<int64_t> max_exclusive;
  std::optional<uint32_t> length;
  std::optional<uint32_t> min_length;
  std::optional<uint32_t> max_length;
  /// Empty means "no enumeration facet".
  std::vector<std::string> enumeration;

  bool IsUnrestricted() const {
    return !min_inclusive && !max_inclusive && !min_exclusive &&
           !max_exclusive && !length && !min_length && !max_length &&
           enumeration.empty();
  }
  bool operator==(const Facets&) const = default;
};

/// A simple type: an atomic base restricted by facets.
struct SimpleType {
  AtomicKind kind = AtomicKind::kString;
  Facets facets;

  bool operator==(const SimpleType&) const = default;
};

/// Checks `value` against the type's lexical space and facets.
/// OK = valid; kInvalidArgument with a diagnostic = invalid.
Status ValidateSimpleValue(const SimpleType& type, std::string_view value);

/// Decimal facet values and ProbeSimpleValue's scaled arithmetic use this
/// fixed-point scale (see ParseDecimalScaled).
inline constexpr int64_t kDecimalScale = 1000000000;  // 10^9

/// Branch-light validity probe for the hot simple-value shapes, inlinable
/// into validator walks: +1 = provably valid, -1 = provably invalid, 0 =
/// undecided (run the full ValidateSimpleValue). Decisions agree exactly
/// with ValidateSimpleValue; the full check is still the only source of
/// diagnostics, so failure paths call it anyway. Covers unrestricted
/// strings and the integral kinds with pure range facets; everything else
/// (boolean, date, decimal, enumerations, length facets, ≥10-digit
/// literals) returns 0.
inline int ProbeSimpleValue(const SimpleType& type, std::string_view value) {
  const Facets& f = type.facets;
  switch (type.kind) {
    case AtomicKind::kString:
      // Range facets never bind for strings; only length/enumeration can
      // reject, and their absence makes every literal valid.
      return (!f.length && !f.min_length && !f.max_length &&
              f.enumeration.empty())
                 ? 1
                 : 0;
    case AtomicKind::kInteger:
    case AtomicKind::kNonNegativeInteger:
    case AtomicKind::kPositiveInteger: {
      if (f.length || f.min_length || f.max_length || !f.enumeration.empty()) {
        return 0;  // lexical-form facets: defer to the full check
      }
      size_t b = 0, e = value.size();
      while (b < e && IsXmlWhitespace(value[b])) ++b;
      while (e > b && IsXmlWhitespace(value[e - 1])) --e;
      if (b == e) return -1;  // empty literal
      bool negative = false;
      if (value[b] == '-' || value[b] == '+') {
        negative = value[b] == '-';
        ++b;
      }
      if (b == e) return -1;  // sign without digits
      if (e - b > 9) return 0;  // near int64 range: defer to the full check
      int64_t v = 0;
      for (size_t i = b; i < e; ++i) {
        const unsigned digit = static_cast<unsigned>(value[i]) - '0';
        if (digit > 9) return -1;  // non-digit
        v = v * 10 + static_cast<int64_t>(digit);
      }
      // ≤ 9 digits: |v| < 10^9, so the scaled value fits int64 exactly.
      const int64_t scaled = (negative ? -v : v) * kDecimalScale;
      if (type.kind == AtomicKind::kNonNegativeInteger && scaled < 0) {
        return -1;
      }
      if (type.kind == AtomicKind::kPositiveInteger &&
          scaled < kDecimalScale) {
        return -1;
      }
      if (f.min_inclusive && scaled < *f.min_inclusive) return -1;
      if (f.max_inclusive && scaled > *f.max_inclusive) return -1;
      if (f.min_exclusive && scaled <= *f.min_exclusive) return -1;
      if (f.max_exclusive && scaled >= *f.max_exclusive) return -1;
      return 1;
    }
    default:
      return 0;
  }
}

/// Sound subsumption: true ⟹ every value valid for `a` is valid for `b`.
bool SimpleSubsumed(const SimpleType& a, const SimpleType& b);

/// Sound disjointness: true ⟹ no value is valid for both `a` and `b`.
bool SimpleDisjoint(const SimpleType& a, const SimpleType& b);

/// A deterministic, minimal-ish value in the type's lexical space —
/// enumeration head, range bound, shortest permitted string. Fails with
/// kFailedPrecondition when the value space is provably empty (e.g.
/// contradictory range facets). Used by the document corrector.
Result<std::string> MinimalValidValue(const SimpleType& type);

/// Effective numeric range [lo, hi] of a type (scaled by 10^9), taking the
/// kind's intrinsic bounds and the facets into account. Nullopt bound =
/// unbounded. Returns false for non-numeric kinds.
struct NumericRange {
  std::optional<int64_t> lo;  // inclusive
  std::optional<int64_t> hi;  // inclusive
};
bool EffectiveNumericRange(const SimpleType& type, NumericRange* out);

}  // namespace xmlreval::schema

#endif  // XMLREVAL_SCHEMA_SIMPLE_TYPES_H_
