#include "schema/dtd_parser.h"

#include <unordered_map>

#include "automata/regex_parser.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace xmlreval::schema {
namespace {

struct ElementDecl {
  std::string name;
  enum class Kind { kEmpty, kAny, kPcdata, kChildren } kind;
  std::string content_model;  // for kChildren: the parenthesized expression
};

// Scans the DTD text into element declarations, skipping ATTLIST/NOTATION
// declarations and comments.
class DtdScanner {
 public:
  explicit DtdScanner(std::string_view input) : input_(input) {}

  Result<std::vector<ElementDecl>> Scan() {
    std::vector<ElementDecl> decls;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= input_.size()) return decls;
      if (!Match("<!")) {
        return Error("expected markup declaration");
      }
      if (Match("ELEMENT")) {
        ASSIGN_OR_RETURN(ElementDecl decl, ScanElement());
        decls.push_back(std::move(decl));
      } else if (Match("ATTLIST") || Match("NOTATION")) {
        RETURN_IF_ERROR(SkipToDeclEnd());
      } else if (Match("ENTITY")) {
        return Status::Unsupported("DTD <!ENTITY> declarations are not supported");
      } else {
        return Error("unknown markup declaration");
      }
    }
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < input_.size()) {
      if (IsXmlWhitespace(input_[pos_])) {
        ++pos_;
      } else if (input_.substr(pos_, 4) == "<!--") {
        size_t end = input_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? input_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  bool Match(std::string_view lit) {
    if (input_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status Error(std::string_view msg) const {
    return Status::ParseError("DTD parse error at offset " +
                              std::to_string(pos_) + ": " + std::string(msg));
  }

  Status SkipToDeclEnd() {
    // Quotes may contain '>'.
    char quote = '\0';
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (quote != '\0') {
        if (c == quote) quote = '\0';
      } else if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '>') {
        return Status::OK();
      }
    }
    return Error("unterminated declaration");
  }

  void SkipWs() {
    while (pos_ < input_.size() && IsXmlWhitespace(input_[pos_])) ++pos_;
  }

  Result<std::string> ScanName() {
    SkipWs();
    if (pos_ >= input_.size() || !IsNameStartChar(input_[pos_])) {
      return Error("expected name");
    }
    size_t begin = pos_++;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    return std::string(input_.substr(begin, pos_ - begin));
  }

  Result<ElementDecl> ScanElement() {
    ElementDecl decl;
    ASSIGN_OR_RETURN(decl.name, ScanName());
    SkipWs();
    if (Match("EMPTY")) {
      decl.kind = ElementDecl::Kind::kEmpty;
    } else if (Match("ANY")) {
      decl.kind = ElementDecl::Kind::kAny;
    } else if (pos_ < input_.size() && input_[pos_] == '(') {
      // Balanced-paren scan of the content expression; classify afterwards.
      size_t begin = pos_;
      int depth = 0;
      while (pos_ < input_.size()) {
        char c = input_[pos_];
        if (c == '(') ++depth;
        if (c == ')') {
          --depth;
          if (depth == 0) {
            ++pos_;
            break;
          }
        }
        ++pos_;
      }
      if (depth != 0) return Error("unbalanced parentheses in content model");
      // Trailing occurrence indicator on the group.
      if (pos_ < input_.size() &&
          (input_[pos_] == '*' || input_[pos_] == '+' || input_[pos_] == '?')) {
        ++pos_;
      }
      decl.content_model = std::string(input_.substr(begin, pos_ - begin));
      if (decl.content_model.find("#PCDATA") != std::string::npos) {
        std::string_view inner = TrimWhitespace(decl.content_model);
        if (inner == "(#PCDATA)" || inner == "( #PCDATA )" ||
            TrimWhitespace(inner.substr(1, inner.size() - 2)) == "#PCDATA") {
          decl.kind = ElementDecl::Kind::kPcdata;
        } else {
          return Status::Unsupported("mixed content (#PCDATA|...) in element '" +
                                     decl.name + "' is not supported");
        }
      } else {
        decl.kind = ElementDecl::Kind::kChildren;
      }
    } else {
      return Error("expected content specification");
    }
    SkipWs();
    if (!Match(">")) return Error("expected '>' at end of <!ELEMENT>");
    return decl;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<Schema> ParseDtd(std::string_view input,
                        std::shared_ptr<Alphabet> alphabet,
                        const DtdParseOptions& options) {
  ASSIGN_OR_RETURN(std::vector<ElementDecl> decls, DtdScanner(input).Scan());
  if (decls.empty()) {
    return Status::InvalidSchema("DTD declares no elements");
  }

  SchemaBuilder builder(alphabet);

  // First pass: declare one type per element label (the DTD property).
  std::unordered_map<std::string, TypeId> type_of_label;
  for (const ElementDecl& decl : decls) {
    if (type_of_label.count(decl.name)) {
      return Status::InvalidSchema("element '" + decl.name +
                                   "' declared twice");
    }
    if (decl.kind == ElementDecl::Kind::kPcdata) {
      ASSIGN_OR_RETURN(TypeId t,
                       builder.DeclareSimpleType(decl.name, SimpleType{}));
      type_of_label.emplace(decl.name, t);
    } else {
      ASSIGN_OR_RETURN(TypeId t, builder.DeclareComplexType(decl.name));
      // ATTLIST declarations are skipped, so DTD types accept arbitrary
      // attributes (open policy) rather than rejecting undeclared ones.
      RETURN_IF_ERROR(builder.SetOpenAttributes(t));
      type_of_label.emplace(decl.name, t);
    }
  }

  // Second pass: content models and child typings.
  for (const ElementDecl& decl : decls) {
    TypeId t = type_of_label.at(decl.name);
    automata::RegexPtr regex;
    switch (decl.kind) {
      case ElementDecl::Kind::kPcdata:
        continue;  // simple type, no content model
      case ElementDecl::Kind::kEmpty:
        regex = automata::Regex::Epsilon();
        break;
      case ElementDecl::Kind::kAny: {
        // ANY = (e1 | e2 | ...)* over all declared elements.
        std::vector<automata::RegexPtr> branches;
        for (const ElementDecl& other : decls) {
          branches.push_back(
              automata::Regex::Sym(alphabet->Intern(other.name)));
        }
        regex = automata::Regex::Star(
            automata::Regex::Alternate(std::move(branches)));
        break;
      }
      case ElementDecl::Kind::kChildren: {
        Result<automata::RegexPtr> parsed =
            automata::ParseRegex(decl.content_model, alphabet.get());
        if (!parsed.ok()) {
          return parsed.status().WithContext("element '" + decl.name + "'");
        }
        regex = std::move(parsed).value();
        break;
      }
    }
    RETURN_IF_ERROR(builder.SetContentModel(t, regex));
    for (Symbol sym : regex->SymbolsUsed()) {
      const std::string& label = alphabet->Name(sym);
      auto it = type_of_label.find(label);
      if (it == type_of_label.end()) {
        return Status::InvalidSchema("element '" + decl.name +
                                     "' references undeclared element '" +
                                     label + "'");
      }
      RETURN_IF_ERROR(builder.MapChild(t, sym, it->second));
    }
  }

  // Roots.
  if (options.roots.empty()) {
    for (const auto& [label, t] : type_of_label) {
      RETURN_IF_ERROR(builder.AddRoot(label, t));
    }
  } else {
    for (const std::string& label : options.roots) {
      auto it = type_of_label.find(label);
      if (it == type_of_label.end()) {
        return Status::InvalidSchema("requested root '" + label +
                                     "' is not a declared element");
      }
      RETURN_IF_ERROR(builder.AddRoot(label, it->second));
    }
  }

  return builder.Build(options.build);
}

}  // namespace xmlreval::schema
