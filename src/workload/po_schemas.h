// The purchase-order schemas of the paper's evaluation (Figures 1 and 2),
// as XSD text, plus DTD renderings for the §3.4 experiments.
//
//   * kSourceXsd       — Figure 1a: billTo is OPTIONAL (minOccurs="0"),
//     quantity restricted to < 100. Experiment 1's source schema.
//   * kTargetXsd       — Figure 2: billTo REQUIRED, quantity < 100.
//     Experiment 1's target and experiment 2's target.
//   * kRelaxedQuantityXsd — Figure 2 with quantity maxExclusive "200"
//     instead of "100". Experiment 2's source schema.
//   * kPurchaseOrderDtd   — the same vocabulary as a DTD (billTo required),
//     for the DTD-optimization benches; kSourceDtd makes billTo optional.

#ifndef XMLREVAL_WORKLOAD_PO_SCHEMAS_H_
#define XMLREVAL_WORKLOAD_PO_SCHEMAS_H_

namespace xmlreval::workload {

// Figure 1a. Differs from the target only in billTo's minOccurs.
inline constexpr const char* kSourceXsd = R"XSD(
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="POType1"/>
  <xsd:element name="comment" type="xsd:string"/>
  <xsd:complexType name="POType1">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress" minOccurs="0"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
      <xsd:element name="country" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="Item" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Item">
    <xsd:sequence>
      <xsd:element name="productName" type="xsd:string"/>
      <xsd:element name="quantity">
        <xsd:simpleType>
          <xsd:restriction base="xsd:positiveInteger">
            <xsd:maxExclusive value="100"/>
          </xsd:restriction>
        </xsd:simpleType>
      </xsd:element>
      <xsd:element name="USPrice" type="xsd:decimal"/>
      <xsd:element name="shipDate" type="xsd:date" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
)XSD";

// Figure 2 (the complete target schema: billTo required, quantity < 100).
inline constexpr const char* kTargetXsd = R"XSD(
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="POType2"/>
  <xsd:element name="comment" type="xsd:string"/>
  <xsd:complexType name="POType2">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
      <xsd:element name="country" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="Item" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Item">
    <xsd:sequence>
      <xsd:element name="productName" type="xsd:string"/>
      <xsd:element name="quantity">
        <xsd:simpleType>
          <xsd:restriction base="xsd:positiveInteger">
            <xsd:maxExclusive value="100"/>
          </xsd:restriction>
        </xsd:simpleType>
      </xsd:element>
      <xsd:element name="USPrice" type="xsd:decimal"/>
      <xsd:element name="shipDate" type="xsd:date" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
)XSD";

// Experiment 2's source: Figure 2 with quantity maxExclusive raised to 200.
inline constexpr const char* kRelaxedQuantityXsd = R"XSD(
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="POType2"/>
  <xsd:element name="comment" type="xsd:string"/>
  <xsd:complexType name="POType2">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
      <xsd:element name="country" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="Item" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Item">
    <xsd:sequence>
      <xsd:element name="productName" type="xsd:string"/>
      <xsd:element name="quantity">
        <xsd:simpleType>
          <xsd:restriction base="xsd:positiveInteger">
            <xsd:maxExclusive value="200"/>
          </xsd:restriction>
        </xsd:simpleType>
      </xsd:element>
      <xsd:element name="USPrice" type="xsd:decimal"/>
      <xsd:element name="shipDate" type="xsd:date" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
)XSD";

// DTD rendering of the purchase-order vocabulary (billTo required). Facets
// do not exist in DTDs, so quantity is just #PCDATA.
inline constexpr const char* kPurchaseOrderDtd = R"DTD(
<!ELEMENT purchaseOrder (shipTo, billTo, items)>
<!ELEMENT shipTo (name, street, city, state, zip, country)>
<!ELEMENT billTo (name, street, city, state, zip, country)>
<!ELEMENT items (item)*>
<!ELEMENT item (productName, quantity, USPrice, shipDate?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT zip (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT productName (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT USPrice (#PCDATA)>
<!ELEMENT shipDate (#PCDATA)>
)DTD";

// DTD rendering with billTo optional (the Figure 1a shape).
inline constexpr const char* kSourceDtd = R"DTD(
<!ELEMENT purchaseOrder (shipTo, billTo?, items)>
<!ELEMENT shipTo (name, street, city, state, zip, country)>
<!ELEMENT billTo (name, street, city, state, zip, country)>
<!ELEMENT items (item)*>
<!ELEMENT item (productName, quantity, USPrice, shipDate?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT zip (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT productName (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT USPrice (#PCDATA)>
<!ELEMENT shipDate (#PCDATA)>
)DTD";

}  // namespace xmlreval::workload

#endif  // XMLREVAL_WORKLOAD_PO_SCHEMAS_H_
