#include "workload/po_generator.h"

#include <random>
#include <string>

#include "common/macros.h"

namespace xmlreval::workload {

namespace {

// Appends <label>text</label> under parent.
void AddLeaf(xml::Document* doc, xml::NodeId parent, const char* label,
             const std::string& text) {
  xml::NodeId e = doc->CreateElement(label);
  XMLREVAL_CHECK(doc->AppendChild(parent, e).ok(), "AppendChild failed");
  xml::NodeId t = doc->CreateText(text);
  XMLREVAL_CHECK(doc->AppendChild(e, t).ok(), "AppendChild failed");
}

void AddAddress(xml::Document* doc, xml::NodeId parent, const char* label,
                std::mt19937_64* rng) {
  xml::NodeId addr = doc->CreateElement(label);
  XMLREVAL_CHECK(doc->AppendChild(parent, addr).ok(), "AppendChild failed");
  std::uniform_int_distribution<int> digits(10000, 99999);
  AddLeaf(doc, addr, "name", "Alice Smith");
  AddLeaf(doc, addr, "street", std::to_string(digits(*rng) % 900 + 100) +
                                   " Maple Street");
  AddLeaf(doc, addr, "city", "Mill Valley");
  AddLeaf(doc, addr, "state", "CA");
  AddLeaf(doc, addr, "zip", std::to_string(digits(*rng)));
  AddLeaf(doc, addr, "country", "US");
}

}  // namespace

xml::Document GeneratePurchaseOrder(const PoGeneratorOptions& options) {
  xml::Document doc;
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int> quantity(options.quantity_min,
                                              options.quantity_max);
  std::uniform_int_distribution<int> cents(100, 99999);
  std::uniform_int_distribution<int> day(1, 28);
  std::uniform_int_distribution<int> month(1, 12);
  std::uniform_int_distribution<int> percent(1, 100);

  xml::NodeId root = doc.CreateElement("purchaseOrder");
  XMLREVAL_CHECK(doc.SetRoot(root).ok(), "SetRoot failed");
  AddAddress(&doc, root, "shipTo", &rng);
  if (options.include_bill_to) {
    AddAddress(&doc, root, "billTo", &rng);
  }
  xml::NodeId items = doc.CreateElement("items");
  XMLREVAL_CHECK(doc.AppendChild(root, items).ok(), "AppendChild failed");

  for (size_t i = 0; i < options.item_count; ++i) {
    xml::NodeId item = doc.CreateElement("item");
    XMLREVAL_CHECK(doc.AppendChild(items, item).ok(), "AppendChild failed");
    AddLeaf(&doc, item, "productName", "Widget-" + std::to_string(i));
    AddLeaf(&doc, item, "quantity", std::to_string(quantity(rng)));
    int price = cents(rng);
    AddLeaf(&doc, item, "USPrice",
            std::to_string(price / 100) + "." +
                (price % 100 < 10 ? "0" : "") + std::to_string(price % 100));
    if (percent(rng) <= options.ship_date_percent) {
      int m = month(rng);
      int d = day(rng);
      AddLeaf(&doc, item, "shipDate",
              "2004-" + std::string(m < 10 ? "0" : "") + std::to_string(m) +
                  "-" + std::string(d < 10 ? "0" : "") + std::to_string(d));
    }
  }
  return doc;
}

}  // namespace xmlreval::workload
