#include "workload/random_docs.h"

#include <deque>
#include <limits>
#include <random>

#include "common/macros.h"

namespace xmlreval::workload {

using automata::Dfa;
using automata::StateId;
using automata::Symbol;
using schema::Schema;
using schema::SimpleType;
using schema::TypeId;

namespace {

constexpr int64_t kScale = 1000000000;

// dist[q] = length of the shortest string from q to an accepting state
// (SIZE_MAX for co-dead states). BFS over reversed edges.
std::vector<size_t> DistanceToAccept(const Dfa& dfa) {
  size_t n = dfa.num_states();
  std::vector<std::vector<StateId>> rev(n);
  for (StateId q = 0; q < n; ++q) {
    for (Symbol s = 0; s < dfa.alphabet_size(); ++s) {
      rev[dfa.Next(q, s)].push_back(q);
    }
  }
  std::vector<size_t> dist(n, std::numeric_limits<size_t>::max());
  std::deque<StateId> queue;
  for (StateId q = 0; q < n; ++q) {
    if (dfa.IsAccepting(q)) {
      dist[q] = 0;
      queue.push_back(q);
    }
  }
  while (!queue.empty()) {
    StateId q = queue.front();
    queue.pop_front();
    for (StateId p : rev[q]) {
      if (dist[p] == std::numeric_limits<size_t>::max()) {
        dist[p] = dist[q] + 1;
        queue.push_back(p);
      }
    }
  }
  return dist;
}

class Sampler {
 public:
  Sampler(const Schema& schema, const RandomDocOptions& options)
      : schema_(schema), rng_(options.seed), budget_(options.max_elements) {}

  Result<xml::Document> Sample(const std::string& root_label) {
    auto sym = schema_.alphabet()->Find(root_label);
    if (!sym) {
      return Status::NotFound("root label '" + root_label +
                              "' is not in the alphabet");
    }
    TypeId root_type = schema_.RootType(*sym);
    if (root_type == schema::kInvalidType) {
      return Status::NotFound("label '" + root_label +
                              "' is not a root of the schema");
    }
    xml::Document doc;
    xml::NodeId root = doc.CreateElement(root_label);
    RETURN_IF_ERROR(doc.SetRoot(root));
    RETURN_IF_ERROR(Fill(&doc, root, root_type));
    return doc;
  }

 private:
  Status Fill(xml::Document* doc, xml::NodeId node, TypeId type) {
    if (schema_.IsSimple(type)) {
      std::string value = SampleSimpleValue(schema_.simple_type(type), rng_());
      xml::NodeId text = doc->CreateText(value);
      return doc->AppendChild(node, text);
    }

    // Required attributes always; optional ones with probability 1/2.
    for (const auto& [name, attr] : schema_.complex_type(type).attributes) {
      if (attr.required || (rng_() & 1)) {
        RETURN_IF_ERROR(doc->SetAttribute(
            node, name, SampleSimpleValue(attr.type, rng_())));
      }
    }

    const Dfa& dfa = schema_.ContentDfa(type);
    const std::vector<size_t>& dist = Distances(type, dfa);

    StateId q = dfa.start_state();
    XMLREVAL_CHECK(dist[q] != std::numeric_limits<size_t>::max(),
                   "non-productive content model survived Build");
    std::vector<Symbol> chosen;
    while (true) {
      bool must_finish = budget_ == 0 || chosen.size() > 64;
      if (dfa.IsAccepting(q)) {
        if (must_finish || std::uniform_int_distribution<int>(0, 2)(rng_) == 0) {
          break;
        }
      }
      // Candidate symbols: keep an accepting state reachable; when the
      // budget is gone, insist on strictly decreasing distance.
      std::vector<Symbol> candidates;
      for (Symbol s = 0; s < dfa.alphabet_size(); ++s) {
        size_t d = dist[dfa.Next(q, s)];
        if (d == std::numeric_limits<size_t>::max()) continue;
        if (must_finish && d + 1 > dist[q]) continue;
        candidates.push_back(s);
      }
      if (candidates.empty()) {
        // Only possible when q is accepting (dist 0); finish here.
        XMLREVAL_CHECK(dfa.IsAccepting(q), "sampler stuck in non-accepting state");
        break;
      }
      Symbol s = candidates[std::uniform_int_distribution<size_t>(
          0, candidates.size() - 1)(rng_)];
      chosen.push_back(s);
      q = dfa.Next(q, s);
      if (budget_ > 0) --budget_;
    }

    for (Symbol s : chosen) {
      TypeId child_type = schema_.ChildType(type, s);
      XMLREVAL_CHECK(child_type != schema::kInvalidType,
                     "content model uses untyped label");
      xml::NodeId child = doc->CreateElement(schema_.alphabet()->Name(s));
      RETURN_IF_ERROR(doc->AppendChild(node, child));
      RETURN_IF_ERROR(Fill(doc, child, child_type));
    }
    return Status::OK();
  }

  const std::vector<size_t>& Distances(TypeId type, const Dfa& dfa) {
    auto it = distances_.find(type);
    if (it == distances_.end()) {
      it = distances_.emplace(type, DistanceToAccept(dfa)).first;
    }
    return it->second;
  }

  const Schema& schema_;
  std::mt19937_64 rng_;
  size_t budget_;
  std::unordered_map<TypeId, std::vector<size_t>> distances_;
};

}  // namespace

std::string SampleSimpleValue(const SimpleType& type, uint64_t seed) {
  std::mt19937_64 rng(seed);
  if (!type.facets.enumeration.empty()) {
    return type.facets.enumeration[std::uniform_int_distribution<size_t>(
        0, type.facets.enumeration.size() - 1)(rng)];
  }
  switch (type.kind) {
    case schema::AtomicKind::kBoolean:
      return (rng() & 1) ? "true" : "false";
    case schema::AtomicKind::kDate: {
      int m = std::uniform_int_distribution<int>(1, 12)(rng);
      int d = std::uniform_int_distribution<int>(1, 28)(rng);
      return "2004-" + std::string(m < 10 ? "0" : "") + std::to_string(m) +
             "-" + std::string(d < 10 ? "0" : "") + std::to_string(d);
    }
    case schema::AtomicKind::kString: {
      // Respect length facets.
      size_t len = 6;
      if (type.facets.length) {
        len = *type.facets.length;
      } else {
        size_t lo = type.facets.min_length ? *type.facets.min_length : 1;
        size_t hi = type.facets.max_length ? *type.facets.max_length : lo + 8;
        len = std::uniform_int_distribution<size_t>(lo, hi)(rng);
      }
      std::string out;
      for (size_t i = 0; i < len; ++i) {
        out += static_cast<char>('a' + (rng() % 26));
      }
      return out;
    }
    default: {
      // Numeric kinds: draw from the effective range.
      schema::NumericRange range;
      bool ok = schema::EffectiveNumericRange(type, &range);
      XMLREVAL_CHECK(ok, "numeric kind without a numeric range");
      int64_t lo = range.lo ? *range.lo / kScale : -1000;
      int64_t hi = range.hi ? *range.hi / kScale : lo + 2000;
      if (hi < lo) hi = lo;
      int64_t v = std::uniform_int_distribution<int64_t>(lo, hi)(rng);
      if (type.kind == schema::AtomicKind::kDecimal && (rng() & 1)) {
        return std::to_string(v) + "." +
               std::to_string(std::uniform_int_distribution<int>(0, 99)(rng));
      }
      return std::to_string(v);
    }
  }
}

Result<xml::Document> SampleDocument(const Schema& schema,
                                     const RandomDocOptions& options) {
  std::string root_label = options.root_label;
  if (root_label.empty()) {
    if (schema.roots().empty()) {
      return Status::FailedPrecondition("schema declares no roots");
    }
    // Deterministic pick: the lexicographically smallest root label.
    for (const auto& [sym, type] : schema.roots()) {
      const std::string& name = schema.alphabet()->Name(sym);
      if (root_label.empty() || name < root_label) root_label = name;
    }
  }
  Sampler sampler(schema, options);
  return sampler.Sample(root_label);
}

}  // namespace xmlreval::workload
