#include "workload/random_schemas.h"

#include <random>
#include <string>
#include <vector>

#include "common/macros.h"

namespace xmlreval::workload {

using automata::Regex;
using automata::RegexPtr;
using schema::AtomicKind;
using schema::Schema;
using schema::SchemaBuilder;
using schema::SimpleType;
using schema::TypeId;

namespace {

constexpr int64_t kScale = 1000000000;

SimpleType RandomSimpleType(std::mt19937_64* rng) {
  switch ((*rng)() % 4) {
    case 0:
      return SimpleType{AtomicKind::kString, {}};
    case 1: {
      SimpleType t{AtomicKind::kInteger, {}};
      int64_t lo = static_cast<int64_t>((*rng)() % 50);
      t.facets.min_inclusive = lo * kScale;
      t.facets.max_inclusive = (lo + 10 + static_cast<int64_t>((*rng)() % 90)) * kScale;
      return t;
    }
    case 2: {
      SimpleType t{AtomicKind::kPositiveInteger, {}};
      t.facets.max_exclusive =
          (50 + static_cast<int64_t>((*rng)() % 150)) * kScale;
      return t;
    }
    default:
      return SimpleType{AtomicKind::kBoolean, {}};
  }
}

// Builds the subset (bitmask) DFA of an <all>-style group over `members`
// (symbol, required) pairs — mirrors the XSD front end's construction.
automata::Dfa BuildAllGroupDfa(
    const std::vector<std::pair<automata::Symbol, bool>>& members,
    size_t alphabet_size) {
  size_t n = members.size();
  size_t num_sets = size_t{1} << n;
  automata::Dfa dfa(num_sets + 1, alphabet_size);
  automata::StateId sink = static_cast<automata::StateId>(num_sets);
  for (size_t set = 0; set < num_sets; ++set) {
    automata::StateId from = static_cast<automata::StateId>(set);
    for (automata::Symbol sym = 0; sym < alphabet_size; ++sym) {
      dfa.SetTransition(from, sym, sink);
    }
    for (size_t i = 0; i < n; ++i) {
      if (set & (size_t{1} << i)) continue;
      dfa.SetTransition(from, members[i].first,
                        static_cast<automata::StateId>(set | (size_t{1} << i)));
    }
    bool complete = true;
    for (size_t i = 0; i < n; ++i) {
      if (members[i].second && !(set & (size_t{1} << i))) {
        complete = false;
        break;
      }
    }
    dfa.SetAccepting(from, complete);
  }
  for (automata::Symbol sym = 0; sym < alphabet_size; ++sym) {
    dfa.SetTransition(sink, sym, sink);
  }
  dfa.set_start_state(0);
  return dfa;
}

}  // namespace

Result<Schema> GenerateRandomSchema(
    const std::shared_ptr<schema::Alphabet>& alphabet,
    const RandomSchemaOptions& options) {
  std::mt19937_64 rng(options.seed);
  SchemaBuilder builder(alphabet);

  // Simple leaf types.
  std::vector<TypeId> simple_types;
  for (size_t i = 0; i < 3; ++i) {
    ASSIGN_OR_RETURN(
        TypeId t, builder.DeclareSimpleType("Leaf" + std::to_string(i),
                                            RandomSimpleType(&rng)));
    simple_types.push_back(t);
  }

  // Complex types, children referencing strictly later types (a DAG, so
  // everything is productive).
  size_t n = std::max<size_t>(options.complex_types, 1);
  std::vector<TypeId> complex_types(n);
  for (size_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(complex_types[i],
                     builder.DeclareComplexType("C" + std::to_string(i)));
  }

  for (size_t i = 0; i < n; ++i) {
    size_t k = 1 + rng() % options.max_children;
    if (static_cast<int>(rng() % 100) < options.all_group_percent) {
      // An <all>-style type: members in any order, each 0/1 times.
      std::vector<std::pair<automata::Symbol, bool>> members;
      std::vector<automata::Symbol> symbols;
      for (size_t c = 0; c < k; ++c) {
        std::string label = "t" + std::to_string(i) + "_" + std::to_string(c);
        TypeId child;
        if (i + 1 < n && (rng() & 1)) {
          child = complex_types[i + 1 + rng() % (n - i - 1)];
        } else {
          child = simple_types[rng() % simple_types.size()];
        }
        RETURN_IF_ERROR(builder.MapChild(complex_types[i], label, child));
        automata::Symbol sym = alphabet->Intern(label);
        members.emplace_back(sym, (rng() & 1) != 0);
        symbols.push_back(sym);
      }
      // NOTE: the DFA is built over the alphabet as of now; Build() pads.
      RETURN_IF_ERROR(builder.SetContentModelDfa(
          complex_types[i], BuildAllGroupDfa(members, alphabet->size()),
          std::move(symbols)));
      if (static_cast<int>(rng() % 100) < options.attribute_percent) {
        RETURN_IF_ERROR(builder.DeclareAttribute(
            complex_types[i], "attr" + std::to_string(i),
            RandomSimpleType(&rng), (rng() & 1) != 0));
      }
      continue;
    }
    std::vector<RegexPtr> parts;
    for (size_t c = 0; c < k; ++c) {
      std::string label = "t" + std::to_string(i) + "_" + std::to_string(c);
      // Child type: a later complex type when possible, else a simple one.
      TypeId child;
      if (i + 1 < n && (rng() & 1)) {
        child = complex_types[i + 1 + rng() % (n - i - 1)];
      } else {
        child = simple_types[rng() % simple_types.size()];
      }
      RETURN_IF_ERROR(builder.MapChild(complex_types[i], label, child));
      RegexPtr atom = Regex::Sym(alphabet->Intern(label));
      int roll = static_cast<int>(rng() % 100);
      if (roll < options.optional_percent) {
        atom = Regex::Optional(std::move(atom));
      } else if (roll < options.optional_percent + options.star_percent) {
        atom = Regex::Star(std::move(atom));
      }
      parts.push_back(std::move(atom));
    }
    // Occasionally turn a neighbouring pair into a choice (distinct labels
    // keep the expression 1-unambiguous).
    if (parts.size() >= 2 && (rng() % 3) == 0) {
      RegexPtr right = parts.back();
      parts.pop_back();
      RegexPtr left = parts.back();
      parts.pop_back();
      parts.push_back(Regex::Alternate({std::move(left), std::move(right)}));
    }
    RETURN_IF_ERROR(builder.SetContentModel(complex_types[i],
                                            Regex::Concat(std::move(parts))));
    if (static_cast<int>(rng() % 100) < options.attribute_percent) {
      RETURN_IF_ERROR(builder.DeclareAttribute(
          complex_types[i], "attr" + std::to_string(i),
          RandomSimpleType(&rng), (rng() & 1) != 0));
    }
  }

  RETURN_IF_ERROR(builder.AddRoot("root", complex_types[0]));
  return builder.Build();
}

namespace {

// Toggles optionality somewhere in the expression: strips an Optional
// wrapper or adds one around a random concat member (or the whole body).
RegexPtr ToggleOptionality(const RegexPtr& regex, std::mt19937_64* rng) {
  if (regex->kind() == automata::RegexKind::kConcat) {
    const auto& children = regex->children();
    size_t idx = (*rng)() % children.size();
    std::vector<RegexPtr> rebuilt;
    for (size_t i = 0; i < children.size(); ++i) {
      if (i != idx) {
        rebuilt.push_back(children[i]);
      } else if (children[i]->kind() == automata::RegexKind::kOptional) {
        rebuilt.push_back(children[i]->child());
      } else {
        rebuilt.push_back(Regex::Optional(children[i]));
      }
    }
    return Regex::Concat(std::move(rebuilt));
  }
  if (regex->kind() == automata::RegexKind::kOptional) return regex->child();
  return Regex::Optional(regex);
}

SimpleType MutateSimple(const SimpleType& type, std::mt19937_64* rng) {
  SimpleType out = type;
  int64_t delta = (1 + static_cast<int64_t>((*rng)() % 40)) * kScale;
  if ((*rng)() & 1) delta = -delta;
  if (out.facets.max_exclusive) {
    *out.facets.max_exclusive = std::max<int64_t>(
        2 * kScale, *out.facets.max_exclusive + delta);
  } else if (out.facets.max_inclusive) {
    *out.facets.max_inclusive =
        std::max(out.facets.min_inclusive.value_or(0) + kScale,
                 *out.facets.max_inclusive + delta);
  } else if (out.kind == AtomicKind::kString && ((*rng)() & 1)) {
    out.facets.max_length = 4 + (*rng)() % 12;
  }
  return out;
}

}  // namespace

Result<Schema> MutateSchema(const Schema& reference,
                            const MutationOptions& options) {
  std::mt19937_64 rng(options.seed);
  SchemaBuilder builder(reference.alphabet());

  size_t n = reference.num_types();
  // Decide which types to mutate.
  std::vector<bool> mutate(n, false);
  for (size_t m = 0; m < options.mutations; ++m) {
    mutate[rng() % n] = true;
  }

  std::vector<TypeId> ids(n);
  for (TypeId t = 0; t < n; ++t) {
    if (reference.IsSimple(t)) {
      SimpleType st = reference.simple_type(t);
      if (mutate[t]) st = MutateSimple(st, &rng);
      ASSIGN_OR_RETURN(ids[t],
                       builder.DeclareSimpleType(reference.TypeName(t), st));
    } else {
      ASSIGN_OR_RETURN(ids[t],
                       builder.DeclareComplexType(reference.TypeName(t)));
    }
  }
  for (TypeId t = 0; t < n; ++t) {
    if (reference.IsSimple(t)) continue;
    const schema::ComplexType& ct = reference.complex_type(t);
    if (ct.content_model) {
      RegexPtr model = ct.content_model;
      if (mutate[t]) model = ToggleOptionality(model, &rng);
      RETURN_IF_ERROR(builder.SetContentModel(ids[t], model));
    } else {
      // Preset-DFA content (e.g. an <all> group): carried over unchanged.
      RETURN_IF_ERROR(builder.SetContentModelDfa(
          ids[t], reference.ContentDfa(t), ct.preset_symbols));
    }
    for (const auto& [sym, child] : ct.child_types) {
      RETURN_IF_ERROR(builder.MapChild(ids[t], sym, ids[child]));
    }
    for (const auto& [name, attr] : ct.attributes) {
      bool required = attr.required;
      if (mutate[t] && (rng() & 1)) required = !required;
      RETURN_IF_ERROR(
          builder.DeclareAttribute(ids[t], name, attr.type, required));
    }
    if (ct.open_attributes) {
      RETURN_IF_ERROR(builder.SetOpenAttributes(ids[t]));
    }
  }
  for (const auto& [sym, t] : reference.roots()) {
    RETURN_IF_ERROR(
        builder.AddRoot(reference.alphabet()->Name(sym), ids[t]));
  }
  return builder.Build();
}

}  // namespace xmlreval::workload
