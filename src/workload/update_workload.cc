#include "workload/update_workload.h"

#include <random>
#include <unordered_set>

#include "common/macros.h"

namespace xmlreval::workload {

namespace {

// Collects live (non-deleted per `editor`'s index view is not accessible;
// we track deletions locally) nodes by kind.
struct NodePools {
  std::vector<xml::NodeId> elements;      // all live elements (root included)
  std::vector<xml::NodeId> texts;         // live text nodes
};

NodePools CollectPools(const xml::Document& doc,
                       const std::unordered_set<xml::NodeId>& deleted) {
  NodePools pools;
  if (!doc.has_root()) return pools;
  std::vector<xml::NodeId> stack{doc.root()};
  while (!stack.empty()) {
    xml::NodeId node = stack.back();
    stack.pop_back();
    if (deleted.count(node)) continue;
    if (doc.IsElement(node)) {
      pools.elements.push_back(node);
      for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
           c = doc.next_sibling(c)) {
        stack.push_back(c);
      }
    } else {
      pools.texts.push_back(node);
    }
  }
  return pools;
}

bool IsEffectiveLeaf(const xml::Document& doc, xml::NodeId node,
                     const std::unordered_set<xml::NodeId>& deleted) {
  for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
       c = doc.next_sibling(c)) {
    if (!deleted.count(c)) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<AppliedUpdate>> ApplyRandomUpdates(
    xml::Document* doc, xml::DocumentEditor* editor,
    const UpdateWorkloadOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::vector<AppliedUpdate> applied;
  std::unordered_set<xml::NodeId> deleted;

  // Label pool: explicit, or harvested from the document.
  std::vector<std::string> labels = options.label_pool;
  if (labels.empty()) {
    NodePools pools = CollectPools(*doc, deleted);
    std::unordered_set<std::string> seen;
    for (xml::NodeId e : pools.elements) {
      if (seen.insert(doc->label(e)).second) labels.push_back(doc->label(e));
    }
  }
  if (labels.empty()) {
    return Status::FailedPrecondition("no labels available for updates");
  }

  int total_weight = options.rename_weight + options.insert_weight +
                     options.delete_weight + options.text_edit_weight;
  if (total_weight <= 0) {
    return Status::InvalidArgument("update weights sum to zero");
  }

  auto pick = [&](const std::vector<xml::NodeId>& pool) {
    return pool[std::uniform_int_distribution<size_t>(0, pool.size() - 1)(rng)];
  };
  auto pick_label = [&]() {
    return labels[std::uniform_int_distribution<size_t>(0, labels.size() - 1)(
        rng)];
  };

  size_t attempts = 0;
  while (applied.size() < options.edit_count &&
         attempts < options.edit_count * 20 + 50) {
    ++attempts;
    NodePools pools = CollectPools(*doc, deleted);
    if (pools.elements.empty()) break;

    int roll = std::uniform_int_distribution<int>(0, total_weight - 1)(rng);
    if (roll < options.rename_weight) {
      xml::NodeId node = pick(pools.elements);
      std::string label = pick_label();
      Status s = editor->RenameElement(node, label);
      if (s.ok()) {
        applied.push_back({AppliedUpdate::Kind::kRename, node,
                           "rename to '" + label + "'"});
      }
      continue;
    }
    roll -= options.rename_weight;
    if (roll < options.insert_weight) {
      xml::NodeId parent = pick(pools.elements);
      std::string label = pick_label();
      // Insert as first child or before/after a random child.
      Result<xml::NodeId> inserted = [&]() -> Result<xml::NodeId> {
        std::vector<xml::NodeId> children = doc->Children(parent);
        if (children.empty() || (rng() & 3) == 0) {
          return editor->InsertElementFirstChild(parent, label);
        }
        xml::NodeId ref = pick(children);
        return (rng() & 1) ? editor->InsertElementBefore(ref, label)
                           : editor->InsertElementAfter(ref, label);
      }();
      if (inserted.ok()) {
        applied.push_back({AppliedUpdate::Kind::kInsert, *inserted,
                           "insert '" + label + "'"});
      }
      continue;
    }
    roll -= options.insert_weight;
    if (roll < options.delete_weight) {
      // Deletable: effective leaves that are not the root.
      std::vector<xml::NodeId> leaves;
      for (xml::NodeId e : pools.elements) {
        if (e != doc->root() && IsEffectiveLeaf(*doc, e, deleted)) {
          leaves.push_back(e);
        }
      }
      for (xml::NodeId t : pools.texts) leaves.push_back(t);
      if (leaves.empty()) continue;
      xml::NodeId node = pick(leaves);
      Status s = editor->DeleteLeaf(node);
      if (s.ok()) {
        deleted.insert(node);
        applied.push_back({AppliedUpdate::Kind::kDelete, node, "delete"});
      }
      continue;
    }
    // Text edit.
    if (pools.texts.empty()) continue;
    xml::NodeId node = pick(pools.texts);
    std::string value = std::to_string(
        std::uniform_int_distribution<int>(-50, 250)(rng));
    Status s = editor->UpdateText(node, value);
    if (s.ok()) {
      applied.push_back({AppliedUpdate::Kind::kTextEdit, node,
                         "set text to '" + value + "'"});
    }
  }
  return applied;
}

}  // namespace xmlreval::workload
