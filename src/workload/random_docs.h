// Random sampling of valid documents from an abstract schema.
//
// Used by the property tests ("every sampled document passes full
// validation"; "cast verdict == full-validation verdict on random pairs")
// and by the preprocessing/ablation benches that need corpora beyond the
// purchase-order workload.

#ifndef XMLREVAL_WORKLOAD_RANDOM_DOCS_H_
#define XMLREVAL_WORKLOAD_RANDOM_DOCS_H_

#include <cstdint>

#include "common/result.h"
#include "schema/abstract_schema.h"
#include "xml/tree.h"

namespace xmlreval::workload {

struct RandomDocOptions {
  uint64_t seed = 1;
  /// Soft cap on total elements; once exceeded every content model is
  /// completed along a shortest accepting path, so documents terminate.
  size_t max_elements = 200;
  /// Root label to start from; empty = a uniformly random entry of R.
  std::string root_label;
};

/// Samples a document valid with respect to `schema` (guaranteed by
/// construction; all schema types must be productive — Build enforces it).
Result<xml::Document> SampleDocument(const schema::Schema& schema,
                                     const RandomDocOptions& options);

/// Samples a value in the lexical space of `type` (facets respected).
std::string SampleSimpleValue(const schema::SimpleType& type, uint64_t seed);

}  // namespace xmlreval::workload

#endif  // XMLREVAL_WORKLOAD_RANDOM_DOCS_H_
