// Generator for the evaluation's purchase-order documents.
//
// Reproduces the paper's input corpus: documents conforming to the
// Figure 2 schema with a configurable number of <item> elements
// (2 .. 1000 in Table 2), deterministic under a seed.

#ifndef XMLREVAL_WORKLOAD_PO_GENERATOR_H_
#define XMLREVAL_WORKLOAD_PO_GENERATOR_H_

#include <cstdint>

#include "xml/tree.h"

namespace xmlreval::workload {

struct PoGeneratorOptions {
  /// Number of <item> children under <items>.
  size_t item_count = 2;
  /// quantity values are drawn uniformly from [quantity_min, quantity_max].
  int quantity_min = 1;
  int quantity_max = 99;
  /// Probability (percent) that an item carries the optional shipDate.
  int ship_date_percent = 50;
  /// Include the optional billTo address (required by the Figure 2 schema;
  /// turn off to build documents only valid under Figure 1a).
  bool include_bill_to = true;
  uint64_t seed = 42;
};

/// Builds a purchase-order document valid with respect to the Figure 2
/// schema (and, a fortiori, Figure 1a).
xml::Document GeneratePurchaseOrder(const PoGeneratorOptions& options);

}  // namespace xmlreval::workload

#endif  // XMLREVAL_WORKLOAD_PO_GENERATOR_H_
