// Random generation of abstract XML Schemas and of *related* schema pairs.
//
// Powers the whole-pipeline property tests: generate a schema S, derive a
// mutated S' (facets tightened/loosened, particles made optional/required,
// attributes toggled), sample documents valid under S, and require that
// every validator agrees with ground truth (full validation against S').
//
// Generated content models are deterministic BY CONSTRUCTION: each symbol
// is used at most once per content model (distinct-leaf regular
// expressions are always 1-unambiguous), which matches how realistic
// schemas are written and keeps Build() from rejecting the output.

#ifndef XMLREVAL_WORKLOAD_RANDOM_SCHEMAS_H_
#define XMLREVAL_WORKLOAD_RANDOM_SCHEMAS_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "schema/abstract_schema.h"

namespace xmlreval::workload {

struct RandomSchemaOptions {
  uint64_t seed = 1;
  /// Number of complex types (a matching set of simple types is added).
  size_t complex_types = 4;
  /// Maximum distinct child labels per content model.
  size_t max_children = 4;
  /// Probability (percent) that a generated element particle is optional /
  /// starred / plain.
  int optional_percent = 30;
  int star_percent = 20;
  /// Probability (percent) that a complex type declares an attribute.
  int attribute_percent = 40;
  /// Probability (percent) that a complex type is an <all>-style group
  /// (preset bitmask DFA instead of a regular expression). Off by default
  /// because such types have no XSD-writer rendering.
  int all_group_percent = 0;
};

/// Generates a random schema over `alphabet`. The root label is "root".
/// All types are productive by construction (the type graph is a DAG with
/// simple types at the leaves).
Result<schema::Schema> GenerateRandomSchema(
    const std::shared_ptr<schema::Alphabet>& alphabet,
    const RandomSchemaOptions& options);

struct MutationOptions {
  uint64_t seed = 2;
  /// How many independent mutations to attempt.
  size_t mutations = 3;
};

/// Rebuilds `reference` with random local mutations — facet bounds moved,
/// optionality toggled, attribute requiredness flipped — producing a
/// related schema sharing the SAME alphabet and type/label names, i.e. a
/// realistic evolution of `reference` to cast against.
Result<schema::Schema> MutateSchema(const schema::Schema& reference,
                                    const MutationOptions& options);

}  // namespace xmlreval::workload

#endif  // XMLREVAL_WORKLOAD_RANDOM_SCHEMAS_H_
