// Random update workloads over documents, driving xml::DocumentEditor.
//
// Used by the §3.3 property tests (the mod-validator's verdict must equal
// full validation of the committed document) and the A4 bench (cast-with-
// modifications vs. full revalidation across update counts and locality).

#ifndef XMLREVAL_WORKLOAD_UPDATE_WORKLOAD_H_
#define XMLREVAL_WORKLOAD_UPDATE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/editor.h"
#include "xml/tree.h"

namespace xmlreval::workload {

struct UpdateWorkloadOptions {
  uint64_t seed = 7;
  /// Number of edits to apply.
  size_t edit_count = 4;
  /// Relative weights of the edit kinds.
  int rename_weight = 1;
  int insert_weight = 1;
  int delete_weight = 1;
  int text_edit_weight = 1;
  /// Labels used for renames and inserted elements. Empty = labels already
  /// present in the document.
  std::vector<std::string> label_pool;
};

struct AppliedUpdate {
  enum class Kind { kRename, kInsert, kDelete, kTextEdit } kind;
  xml::NodeId node;
  std::string detail;  // human-readable description
};

/// Applies `options.edit_count` random edits through `editor`. Edits may or
/// may not preserve validity — that is the point: the caller compares the
/// incremental verdict against ground truth. Returns what was done.
Result<std::vector<AppliedUpdate>> ApplyRandomUpdates(
    xml::Document* doc, xml::DocumentEditor* editor,
    const UpdateWorkloadOptions& options);

}  // namespace xmlreval::workload

#endif  // XMLREVAL_WORKLOAD_UPDATE_WORKLOAD_H_
