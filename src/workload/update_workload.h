// Random update workloads over documents, driving any editor with the
// xml::DocumentEditor surface — the plain editor for ground-truth runs, or
// analysis::StreamSession for classified runs (both expose
// Apply(const xml::EditOp&)).
//
// Used by the §3.3 property tests (the mod-validator's verdict must equal
// full validation of the committed document), the analyzer soundness
// property tests, and the A4 / update-stream benches. The per-kind
// safe/unsafe label pools let edit-stream benches dial the fraction of
// operations the static analyzer can short-circuit.

#ifndef XMLREVAL_WORKLOAD_UPDATE_WORKLOAD_H_
#define XMLREVAL_WORKLOAD_UPDATE_WORKLOAD_H_

#include <cstdint>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "xml/editor.h"
#include "xml/tree.h"

namespace xmlreval::workload {

struct UpdateWorkloadOptions {
  uint64_t seed = 7;
  /// Number of edits to apply.
  size_t edit_count = 4;
  /// Relative weights of the edit kinds.
  int rename_weight = 1;
  int insert_weight = 1;
  int delete_weight = 1;
  int text_edit_weight = 1;
  /// Labels used for renames and inserted elements. Empty = labels already
  /// present in the document.
  std::vector<std::string> label_pool;

  // -- Per-kind safe/unsafe pools ----------------------------------------
  //
  // When a kind's pools are non-empty they override label_pool for that
  // kind: each draw takes the safe pool with probability safe_percent/100
  // and the unsafe pool otherwise (falling back to the non-empty one).
  // "Safe"/"unsafe" is the caller's intent — typically labels the update
  // analyzer can/cannot short-circuit — the generator attaches no meaning
  // beyond the split.
  std::vector<std::string> rename_safe_labels;
  std::vector<std::string> rename_unsafe_labels;
  std::vector<std::string> insert_safe_labels;
  std::vector<std::string> insert_unsafe_labels;
  std::vector<std::string> text_safe_values;
  std::vector<std::string> text_unsafe_values;
  /// Probability (percent, 0–100) that a per-kind draw uses the safe pool.
  int safe_percent = 100;
  /// Whether renames may target the document root. Root renames re-type
  /// the entire document; benches studying per-subtree behavior turn them
  /// off so one degenerate draw does not dominate a stream.
  bool rename_root = true;
};

struct AppliedUpdate {
  enum class Kind { kRename, kInsert, kDelete, kTextEdit } kind;
  xml::NodeId node;
  std::string detail;  // human-readable description
};

namespace detail {

// Collects live nodes by kind. Deletions are tracked locally: the editor's
// index view is not part of the shared editor surface.
struct NodePools {
  std::vector<xml::NodeId> elements;  // all live elements (root included)
  std::vector<xml::NodeId> texts;     // live text nodes
};

inline NodePools CollectPools(const xml::Document& doc,
                              const std::unordered_set<xml::NodeId>& deleted) {
  NodePools pools;
  if (!doc.has_root()) return pools;
  std::vector<xml::NodeId> stack{doc.root()};
  while (!stack.empty()) {
    xml::NodeId node = stack.back();
    stack.pop_back();
    if (deleted.count(node)) continue;
    if (doc.IsElement(node)) {
      pools.elements.push_back(node);
      for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
           c = doc.next_sibling(c)) {
        stack.push_back(c);
      }
    } else {
      pools.texts.push_back(node);
    }
  }
  return pools;
}

inline bool IsEffectiveLeaf(const xml::Document& doc, xml::NodeId node,
                            const std::unordered_set<xml::NodeId>& deleted) {
  for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
       c = doc.next_sibling(c)) {
    if (!deleted.count(c)) return false;
  }
  return true;
}

}  // namespace detail

/// Applies `options.edit_count` random edits through `editor` (any type
/// with the DocumentEditor editing surface). Edits may or may not preserve
/// validity — that is the point: the caller compares the incremental
/// verdict against ground truth. Returns what was done. When `script` is
/// non-null, every applied operation is appended to it in replayable form:
/// replaying the script in order against an identical document produces
/// identical node ids (the arena is deterministic), which is how the bench
/// and CLI run the same stream through several validation paths.
template <typename EditorT>
Result<std::vector<AppliedUpdate>> ApplyRandomUpdates(
    xml::Document* doc, EditorT* editor, const UpdateWorkloadOptions& options,
    std::vector<xml::EditOp>* script = nullptr) {
  std::mt19937_64 rng(options.seed);
  std::vector<AppliedUpdate> applied;
  std::unordered_set<xml::NodeId> deleted;

  // Label pool: explicit, or harvested from the document.
  std::vector<std::string> labels = options.label_pool;
  if (labels.empty()) {
    detail::NodePools pools = detail::CollectPools(*doc, deleted);
    std::unordered_set<std::string> seen;
    for (xml::NodeId e : pools.elements) {
      std::string label(doc->label(e));
      if (seen.insert(label).second) labels.push_back(std::move(label));
    }
  }
  const bool pooled_renames = !options.rename_safe_labels.empty() ||
                              !options.rename_unsafe_labels.empty();
  const bool pooled_inserts = !options.insert_safe_labels.empty() ||
                              !options.insert_unsafe_labels.empty();
  const bool pooled_texts = !options.text_safe_values.empty() ||
                            !options.text_unsafe_values.empty();
  if (labels.empty() && !(pooled_renames && pooled_inserts)) {
    return Status::FailedPrecondition("no labels available for updates");
  }

  int total_weight = options.rename_weight + options.insert_weight +
                     options.delete_weight + options.text_edit_weight;
  if (total_weight <= 0) {
    return Status::InvalidArgument("update weights sum to zero");
  }

  auto pick = [&](const std::vector<xml::NodeId>& pool) {
    return pool[std::uniform_int_distribution<size_t>(0, pool.size() - 1)(rng)];
  };
  auto pick_string = [&](const std::vector<std::string>& pool) {
    return pool[std::uniform_int_distribution<size_t>(0, pool.size() - 1)(rng)];
  };
  // One safe/unsafe draw per operation: the safe pool with probability
  // safe_percent, degrading to whichever pool is non-empty.
  auto pick_pooled = [&](const std::vector<std::string>& safe,
                         const std::vector<std::string>& unsafe) {
    bool want_safe =
        std::uniform_int_distribution<int>(0, 99)(rng) < options.safe_percent;
    const std::vector<std::string>* pool = want_safe ? &safe : &unsafe;
    if (pool->empty()) pool = want_safe ? &unsafe : &safe;
    return pick_string(*pool);
  };
  auto apply = [&](xml::EditOp op, AppliedUpdate::Kind kind,
                   std::string describe) {
    Status s = editor->Apply(op);
    if (!s.ok()) return false;
    if (op.kind == xml::EditOp::Kind::kDeleteLeaf) deleted.insert(op.node);
    applied.push_back({kind, op.node, std::move(describe)});
    if (script != nullptr) script->push_back(std::move(op));
    return true;
  };

  size_t attempts = 0;
  while (applied.size() < options.edit_count &&
         attempts < options.edit_count * 20 + 50) {
    ++attempts;
    detail::NodePools pools = detail::CollectPools(*doc, deleted);
    if (pools.elements.empty()) break;

    int roll = std::uniform_int_distribution<int>(0, total_weight - 1)(rng);
    if (roll < options.rename_weight) {
      xml::NodeId node = pick(pools.elements);
      if (!options.rename_root && node == doc->root()) continue;
      std::string label =
          pooled_renames
              ? pick_pooled(options.rename_safe_labels,
                            options.rename_unsafe_labels)
              : pick_string(labels);
      apply({xml::EditOp::Kind::kRename, node, label},
            AppliedUpdate::Kind::kRename, "rename to '" + label + "'");
      continue;
    }
    roll -= options.rename_weight;
    if (roll < options.insert_weight) {
      xml::NodeId parent = pick(pools.elements);
      std::string label =
          pooled_inserts
              ? pick_pooled(options.insert_safe_labels,
                            options.insert_unsafe_labels)
              : pick_string(labels);
      // Insert as first child or before/after a random child.
      xml::EditOp op;
      std::vector<xml::NodeId> children = doc->Children(parent);
      if (children.empty() || (rng() & 3) == 0) {
        op = {xml::EditOp::Kind::kInsertElementFirstChild, parent, label};
      } else {
        xml::NodeId ref = pick(children);
        op = {(rng() & 1) ? xml::EditOp::Kind::kInsertElementBefore
                          : xml::EditOp::Kind::kInsertElementAfter,
              ref, label};
      }
      apply(std::move(op), AppliedUpdate::Kind::kInsert,
            "insert '" + label + "'");
      continue;
    }
    roll -= options.insert_weight;
    if (roll < options.delete_weight) {
      // Deletable: effective leaves that are not the root.
      std::vector<xml::NodeId> leaves;
      for (xml::NodeId e : pools.elements) {
        if (e != doc->root() && detail::IsEffectiveLeaf(*doc, e, deleted)) {
          leaves.push_back(e);
        }
      }
      for (xml::NodeId t : pools.texts) leaves.push_back(t);
      if (leaves.empty()) continue;
      xml::NodeId node = pick(leaves);
      apply({xml::EditOp::Kind::kDeleteLeaf, node, ""},
            AppliedUpdate::Kind::kDelete, "delete");
      continue;
    }
    // Text edit.
    if (pools.texts.empty()) continue;
    xml::NodeId node = pick(pools.texts);
    std::string value =
        pooled_texts
            ? pick_pooled(options.text_safe_values, options.text_unsafe_values)
            : std::to_string(
                  std::uniform_int_distribution<int>(-50, 250)(rng));
    apply({xml::EditOp::Kind::kUpdateText, node, value},
          AppliedUpdate::Kind::kTextEdit, "set text to '" + value + "'");
  }
  return applied;
}

}  // namespace xmlreval::workload

#endif  // XMLREVAL_WORKLOAD_UPDATE_WORKLOAD_H_
