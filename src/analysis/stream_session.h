// StreamSession — an UpdateAnalyzer-instrumented edit session.
//
// Mirrors the xml::DocumentEditor surface (so the random-update workload
// template can drive either), classifying every operation against the
// CURRENT tree before applying it, then composes the per-op verdicts into
// one stream verdict:
//
//   kSafe    — every operation is safe and un-entangled: the edited
//              document is target-valid, with zero tree validation,
//   kFatal   — some fatal operation survives composition: the edited
//              document is target-INVALID, again with zero tree work,
//   kUnknown — run ModValidator (Seal() hands over the usual index).
//
// COMPOSITION (Classify). Per-op verdicts hold for one operation applied
// to a target-valid tree; streams entangle them in exactly three ways,
// each resolved by downgrading BOTH sides to kUnknown:
//
//   1. Same node: a later operation on the same node can repair a fatal
//      one (rename away a doomed label, delete the offending leaf) or
//      invalidate a safe one, so two operations sharing a node entangle.
//      This also covers every operation on a node the stream itself
//      inserted — the insert is the first same-node operation.
//   2. Scoped subtrees: verdicts that rely on an untouched subtree
//      (R_sub/R_dis renames with exclusive_subtree) or on the parent's
//      statically-computed simple content (value_scoped) entangle with any
//      operation landing inside that scope.
//   3. Renames: a rename changes the label path below it, which is what
//      the analyzer's O(depth) typing walk and source-validity argument
//      key on — so every operation inside a renamed node's subtree
//      entangles with the rename.
//
// A fatal verdict that SURVIVES these downgrades is decisive even when
// unrelated operations stay unknown: the violation it pins down lives in
// its own scope, and any operation able to repair it (same node, inside
// the scope, an ancestor rename) would have triggered a downgrade.
// Classify() must run before Commit(): the walks rely on deleted nodes
// remaining physically linked.

#ifndef XMLREVAL_ANALYSIS_STREAM_SESSION_H_
#define XMLREVAL_ANALYSIS_STREAM_SESSION_H_

#include <string_view>
#include <vector>

#include "analysis/update_analyzer.h"
#include "common/result.h"
#include "xml/editor.h"
#include "xml/tree.h"

namespace xmlreval::analysis {

/// Composed verdict of an edit stream, with per-op counts AFTER the
/// downgrade rules.
struct StreamVerdict {
  Safety verdict = Safety::kUnknown;
  size_t safe_ops = 0;
  size_t fatal_ops = 0;
  size_t unknown_ops = 0;
  /// How many of unknown_ops were statically decided but entangled.
  size_t downgraded_ops = 0;
  /// Application-order index of the first surviving fatal op, or -1.
  int first_fatal_op = -1;
  const char* reason = "";

  bool decided() const { return verdict != Safety::kUnknown; }
};

class StreamSession {
 public:
  /// `analyzer` and `doc` must outlive the session. The document's
  /// pre-session state must be source-valid (the ModValidator
  /// precondition, inherited by the analyzer's soundness argument).
  StreamSession(const UpdateAnalyzer* analyzer, xml::Document* doc)
      : analyzer_(analyzer), doc_(doc), editor_(doc) {}

  // -- DocumentEditor-mirroring surface -----------------------------------

  Status RenameElement(xml::NodeId node, std::string_view new_label);
  Result<xml::NodeId> InsertElementBefore(xml::NodeId reference,
                                          std::string_view label);
  Result<xml::NodeId> InsertElementAfter(xml::NodeId reference,
                                         std::string_view label);
  Result<xml::NodeId> InsertElementFirstChild(xml::NodeId parent,
                                              std::string_view label);
  Result<xml::NodeId> InsertTextFirstChild(xml::NodeId parent,
                                           std::string_view text);
  Result<xml::NodeId> InsertTextBefore(xml::NodeId reference,
                                       std::string_view text);
  Result<xml::NodeId> InsertTextAfter(xml::NodeId reference,
                                      std::string_view text);
  Status DeleteLeaf(xml::NodeId node);
  Status UpdateText(xml::NodeId node, std::string_view text);

  /// Replays one recorded operation through the classifying surface.
  Status Apply(const xml::EditOp& op);

  bool IsDeleted(xml::NodeId node) const { return editor_.IsDeleted(node); }
  size_t update_count() const { return editor_.update_count(); }

  // -- Stream verdict ------------------------------------------------------

  /// One successfully applied operation with its pre-application verdict.
  struct RecordedOp {
    xml::EditOp::Kind kind;
    /// The operation's anchor: the renamed/deleted/edited node, or the
    /// freshly inserted node.
    xml::NodeId node;
    OpVerdict verdict;
  };
  const std::vector<RecordedOp>& ops() const { return ops_; }

  /// Composes the stream verdict (see header comment). Call before
  /// Commit(); safe to call repeatedly, including before Seal().
  StreamVerdict Classify() const;

  // -- Editor passthrough (for the ModValidator fallback) ------------------

  xml::ModificationIndex Seal() { return editor_.Seal(); }
  Status Commit() { return editor_.Commit(); }
  xml::DocumentEditor& editor() { return editor_; }
  const UpdateAnalyzer& analyzer() const { return *analyzer_; }

 private:
  void Record(xml::EditOp::Kind kind, xml::NodeId node, const OpVerdict& v) {
    ops_.push_back(RecordedOp{kind, node, v});
  }

  /// The node whose subtree anchors the op's verdict: the parent element
  /// for value-scoped verdicts, the op node otherwise.
  xml::NodeId ScopeOf(const RecordedOp& op) const;

  /// True iff `node` lies in the subtree rooted at `scope` (inclusive).
  bool InSubtree(xml::NodeId node, xml::NodeId scope) const;

  const UpdateAnalyzer* analyzer_;
  xml::Document* doc_;
  xml::DocumentEditor editor_;
  std::vector<RecordedOp> ops_;
};

}  // namespace xmlreval::analysis

#endif  // XMLREVAL_ANALYSIS_STREAM_SESSION_H_
