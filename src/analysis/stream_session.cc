#include "analysis/stream_session.h"

#include "common/macros.h"

namespace xmlreval::analysis {

using xml::EditOp;
using xml::kInvalidNode;
using xml::NodeId;

Status StreamSession::RenameElement(NodeId node, std::string_view new_label) {
  OpVerdict v = analyzer_->AnalyzeRename(*doc_, node, new_label);
  RETURN_IF_ERROR(editor_.RenameElement(node, new_label));
  Record(EditOp::Kind::kRename, node, v);
  return Status::OK();
}

Result<NodeId> StreamSession::InsertElementBefore(NodeId reference,
                                                  std::string_view label) {
  NodeId parent =
      doc_->IsValidId(reference) ? doc_->parent(reference) : kInvalidNode;
  OpVerdict v = analyzer_->AnalyzeInsertElement(*doc_, parent, label);
  ASSIGN_OR_RETURN(NodeId node, editor_.InsertElementBefore(reference, label));
  Record(EditOp::Kind::kInsertElementBefore, node, v);
  return node;
}

Result<NodeId> StreamSession::InsertElementAfter(NodeId reference,
                                                 std::string_view label) {
  NodeId parent =
      doc_->IsValidId(reference) ? doc_->parent(reference) : kInvalidNode;
  OpVerdict v = analyzer_->AnalyzeInsertElement(*doc_, parent, label);
  ASSIGN_OR_RETURN(NodeId node, editor_.InsertElementAfter(reference, label));
  Record(EditOp::Kind::kInsertElementAfter, node, v);
  return node;
}

Result<NodeId> StreamSession::InsertElementFirstChild(NodeId parent,
                                                      std::string_view label) {
  OpVerdict v = analyzer_->AnalyzeInsertElement(*doc_, parent, label);
  ASSIGN_OR_RETURN(NodeId node,
                   editor_.InsertElementFirstChild(parent, label));
  Record(EditOp::Kind::kInsertElementFirstChild, node, v);
  return node;
}

Result<NodeId> StreamSession::InsertTextFirstChild(NodeId parent,
                                                   std::string_view text) {
  OpVerdict v = analyzer_->AnalyzeInsertText(*doc_, parent, text);
  ASSIGN_OR_RETURN(NodeId node, editor_.InsertTextFirstChild(parent, text));
  Record(EditOp::Kind::kInsertTextFirstChild, node, v);
  return node;
}

Result<NodeId> StreamSession::InsertTextBefore(NodeId reference,
                                               std::string_view text) {
  NodeId parent =
      doc_->IsValidId(reference) ? doc_->parent(reference) : kInvalidNode;
  OpVerdict v = analyzer_->AnalyzeInsertText(*doc_, parent, text);
  ASSIGN_OR_RETURN(NodeId node, editor_.InsertTextBefore(reference, text));
  Record(EditOp::Kind::kInsertTextBefore, node, v);
  return node;
}

Result<NodeId> StreamSession::InsertTextAfter(NodeId reference,
                                              std::string_view text) {
  NodeId parent =
      doc_->IsValidId(reference) ? doc_->parent(reference) : kInvalidNode;
  OpVerdict v = analyzer_->AnalyzeInsertText(*doc_, parent, text);
  ASSIGN_OR_RETURN(NodeId node, editor_.InsertTextAfter(reference, text));
  Record(EditOp::Kind::kInsertTextAfter, node, v);
  return node;
}

Status StreamSession::DeleteLeaf(NodeId node) {
  OpVerdict v = analyzer_->AnalyzeDeleteLeaf(*doc_, node);
  RETURN_IF_ERROR(editor_.DeleteLeaf(node));
  Record(EditOp::Kind::kDeleteLeaf, node, v);
  return Status::OK();
}

Status StreamSession::UpdateText(NodeId node, std::string_view text) {
  OpVerdict v = analyzer_->AnalyzeTextEdit(*doc_, node, text);
  RETURN_IF_ERROR(editor_.UpdateText(node, text));
  Record(EditOp::Kind::kUpdateText, node, v);
  return Status::OK();
}

Status StreamSession::Apply(const EditOp& op) {
  switch (op.kind) {
    case EditOp::Kind::kRename:
      return RenameElement(op.node, op.value);
    case EditOp::Kind::kInsertElementFirstChild:
      return InsertElementFirstChild(op.node, op.value).status();
    case EditOp::Kind::kInsertElementBefore:
      return InsertElementBefore(op.node, op.value).status();
    case EditOp::Kind::kInsertElementAfter:
      return InsertElementAfter(op.node, op.value).status();
    case EditOp::Kind::kInsertTextFirstChild:
      return InsertTextFirstChild(op.node, op.value).status();
    case EditOp::Kind::kInsertTextBefore:
      return InsertTextBefore(op.node, op.value).status();
    case EditOp::Kind::kInsertTextAfter:
      return InsertTextAfter(op.node, op.value).status();
    case EditOp::Kind::kDeleteLeaf:
      return DeleteLeaf(op.node);
    case EditOp::Kind::kUpdateText:
      return UpdateText(op.node, op.value);
  }
  return Status::InvalidArgument("unknown EditOp kind");
}

NodeId StreamSession::ScopeOf(const RecordedOp& op) const {
  if (op.verdict.value_scoped && doc_->IsValidId(op.node)) {
    NodeId parent = doc_->parent(op.node);
    if (parent != kInvalidNode) return parent;
  }
  return op.node;
}

bool StreamSession::InSubtree(NodeId node, NodeId scope) const {
  for (NodeId n = node; n != kInvalidNode; n = doc_->parent(n)) {
    if (n == scope) return true;
  }
  return false;
}

StreamVerdict StreamSession::Classify() const {
  StreamVerdict sv;
  if (ops_.empty()) {
    // No edits: the stream is the identity, safe exactly under the kSafe
    // precondition (root pair subsumed ⇒ the document is target-valid).
    if (analyzer_->RootSubsumed(*doc_)) {
      sv.verdict = Safety::kSafe;
      sv.reason = "empty stream over a subsumed root pair";
    } else {
      sv.reason = "empty stream, root pair not subsumed";
    }
    return sv;
  }

  const size_t n = ops_.size();
  std::vector<Safety> safety(n);
  for (size_t i = 0; i < n; ++i) safety[i] = ops_[i].verdict.safety;

  // Downgrade entangled pairs (header comment: same node, scoped
  // subtrees, renames). O(n² · depth); streams are short.
  std::vector<bool> down(n, false);
  for (size_t j = 0; j < n; ++j) {
    NodeId scope = ScopeOf(ops_[j]);
    const bool subtree_guard = ops_[j].verdict.exclusive_subtree ||
                               ops_[j].verdict.value_scoped ||
                               ops_[j].kind == EditOp::Kind::kRename;
    for (size_t i = 0; i < n; ++i) {
      if (i == j) continue;
      const bool hit = ops_[i].node == scope ||
                       (subtree_guard && InSubtree(ops_[i].node, scope));
      if (hit) {
        down[i] = true;
        down[j] = true;
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (down[i] && safety[i] != Safety::kUnknown) {
      safety[i] = Safety::kUnknown;
      ++sv.downgraded_ops;
    }
  }

  const char* first_unknown_reason = nullptr;
  for (size_t i = 0; i < n; ++i) {
    switch (safety[i]) {
      case Safety::kSafe:
        ++sv.safe_ops;
        break;
      case Safety::kFatal:
        ++sv.fatal_ops;
        if (sv.first_fatal_op < 0) {
          sv.first_fatal_op = static_cast<int>(i);
          sv.reason = ops_[i].verdict.reason;
        }
        break;
      case Safety::kUnknown:
        ++sv.unknown_ops;
        if (first_unknown_reason == nullptr) {
          first_unknown_reason =
              down[i] ? "entangled operations" : ops_[i].verdict.reason;
        }
        break;
    }
  }

  // A surviving fatal op is decisive (its violation cannot be repaired by
  // the remaining ops — see header); otherwise all ops must be safe.
  if (sv.fatal_ops > 0) {
    sv.verdict = Safety::kFatal;
  } else if (sv.unknown_ops == 0) {
    sv.verdict = Safety::kSafe;
    sv.reason = "all operations statically safe";
  } else {
    sv.verdict = Safety::kUnknown;
    sv.reason = first_unknown_reason;
  }
  return sv;
}

}  // namespace xmlreval::analysis
