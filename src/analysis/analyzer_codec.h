// Binary round-trip for UpdateAnalyzer safety tables (plan-cache payload).
//
// The analyzer's per-(target type, symbol) tables — neutral, doomed,
// empty_ok, sym_class — are pure functions of the schema pair, so the plan
// stores them instead of recompiling the reachability analyses on every
// warm start. The tables are small (bits/ints per symbol) and are decoded
// as owned memory; only the DFA/relation tables of the plan stay mmap'd.
//
// Decode rebuilds a full UpdateAnalyzer around an already-decoded
// TypeRelations; the analyzer shares ownership exactly as
// UpdateAnalyzer::Compile would.

#ifndef XMLREVAL_ANALYSIS_ANALYZER_CODEC_H_
#define XMLREVAL_ANALYSIS_ANALYZER_CODEC_H_

#include <memory>

#include "analysis/update_analyzer.h"
#include "common/result.h"
#include "common/serde.h"

namespace xmlreval::analysis {

class AnalyzerCodec {
 public:
  static void Encode(const UpdateAnalyzer& analyzer, common::ByteWriter* w);

  static Result<UpdateAnalyzer> Decode(
      common::ByteReader* r,
      std::shared_ptr<const core::TypeRelations> relations);
};

}  // namespace xmlreval::analysis

#endif  // XMLREVAL_ANALYSIS_ANALYZER_CODEC_H_
