#include "analysis/analyzer_codec.h"

#include <string>
#include <utility>
#include <vector>

namespace xmlreval::analysis {

namespace {

using common::ByteReader;
using common::ByteWriter;

Status Corrupt(const char* what) {
  return Status::DataLoss(std::string("plan artifact: ") + what);
}

void EncodeBoolVec(const std::vector<bool>& v, ByteWriter* w) {
  w->U32(static_cast<uint32_t>(v.size()));
  for (bool b : v) w->U8(b ? 1 : 0);
}

Status DecodeBoolVec(ByteReader* r, size_t max_size, std::vector<bool>* out) {
  uint32_t n = r->U32();
  if (!r->ok() || n > max_size) return Corrupt("implausible safety table");
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t b = r->U8();
    if (b > 1) return Corrupt("malformed safety table");
    (*out)[i] = b != 0;
  }
  return r->ok() ? Status::OK() : Corrupt("truncated safety table");
}

}  // namespace

void AnalyzerCodec::Encode(const UpdateAnalyzer& analyzer, ByteWriter* w) {
  const auto& tables = analyzer.tables_;
  w->U32(static_cast<uint32_t>(tables.size()));
  for (const auto& t : tables) {
    w->U8(t.valid ? 1 : 0);
    if (!t.valid) continue;
    EncodeBoolVec(t.neutral, w);
    EncodeBoolVec(t.doomed, w);
    EncodeBoolVec(t.empty_ok, w);
    w->U32(static_cast<uint32_t>(t.sym_class.size()));
    w->AlignTo(4);
    for (uint32_t c : t.sym_class) w->U32(c);
  }
  w->AlignTo(8);
}

Result<UpdateAnalyzer> AnalyzerCodec::Decode(
    ByteReader* r, std::shared_ptr<const core::TypeRelations> relations) {
  if (!relations) {
    return Status::InvalidArgument("AnalyzerCodec::Decode: null relations");
  }
  UpdateAnalyzer analyzer;
  analyzer.alphabet_ = relations->source().alphabet().get();
  const size_t nt = relations->target().num_types();
  const size_t sigma = analyzer.alphabet_->size();
  analyzer.relations_ = std::move(relations);

  uint32_t n = r->U32();
  if (!r->ok() || n != nt) {
    return Corrupt("analyzer table count does not match the target schema");
  }
  analyzer.tables_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto& t = analyzer.tables_[i];
    uint8_t valid = r->U8();
    if (!r->ok() || valid > 1) return Corrupt("malformed analyzer record");
    t.valid = valid != 0;
    if (!t.valid) continue;
    RETURN_IF_ERROR(DecodeBoolVec(r, sigma, &t.neutral));
    RETURN_IF_ERROR(DecodeBoolVec(r, sigma, &t.doomed));
    RETURN_IF_ERROR(DecodeBoolVec(r, sigma, &t.empty_ok));
    uint32_t nc = r->U32();
    if (!r->ok() || nc > sigma) return Corrupt("implausible sym_class table");
    r->AlignTo(4);
    t.sym_class.resize(nc);
    for (uint32_t j = 0; j < nc; ++j) t.sym_class[j] = r->U32();
    if (!r->ok()) return Corrupt("truncated sym_class table");
  }
  r->AlignTo(8);
  if (!r->ok()) return Corrupt("truncated analyzer tables");
  return analyzer;
}

}  // namespace xmlreval::analysis
