// Static update-safety analysis: classify editor operations against a
// (source, target) schema pair WITHOUT touching the tree.
//
// The paper revalidates after the edits (core/mod_validator.h). Following
// the static-analysis line of work (Solimando et al., "Automata-based
// Static Analysis of XML Document Adaptations"; Genevès et al., "Ensuring
// Query Compatibility with Evolving XML Schemas"), this layer analyzes the
// OPERATION SHAPE instead: an UpdateAnalyzer is compiled once per schema
// pair from the same Glushkov DFAs and R_sub/R_dis relations the validators
// use, and classifies each operation as
//
//   * kSafe    — always preserves target validity: accept with zero tree
//                work beyond an O(depth) typing walk,
//   * kFatal   — always breaks it: reject immediately,
//   * kUnknown — undecided statically: fall back to ModValidator.
//
// The per-(target type, symbol) tables behind the verdicts:
//
//   neutral[τ'][σ]   δ(q, σ) = q for every reachable state of τ''s content
//                    DFA — inserting/deleting one σ anywhere in the child
//                    string never changes the run, at any position, which
//                    also makes such edits compose freely;
//   doomed[τ'][σ]    δ(q, σ) is co-dead for every reachable q — any child
//                    string containing σ is rejected (this subsumes
//                    σ ∉ Σ_τ', since out-of-model symbols run to the sink);
//   empty_ok[τ'][σ]  types_τ'(σ) is defined and accepts an element with no
//                    children, text, or attributes — what a fresh insert
//                    produces;
//   sym_class[τ'][σ] canonical id of σ's transition column restricted to
//                    reachable states, so δ(·, a) ≡ δ(·, b) (the safe-
//                    rename condition) is one integer compare.
//
// SOUNDNESS PRECONDITIONS. Per-op verdicts assume (a) the document is valid
// for the source schema (same precondition as ModValidator) and (b) for
// kSafe only, that the document's root pair is R_sub-subsumed — so the
// UNEDITED document is target-valid and safety is an induction step. (b)
// holds trivially for the "update problem" where source == target; when it
// fails, every verdict degrades to kUnknown (never to a wrong kSafe).
// Verdicts classify ONE operation against the CURRENT tree; interactions
// between operations of a stream (a fatal op repaired by a later delete, a
// rename invalidating the typing context below it) are resolved by
// StreamSession::Classify (stream_session.h), which downgrades entangled
// verdicts to kUnknown. Unknown symbols (unbound documents, labels outside
// the shared Σ) always classify as kUnknown.

#ifndef XMLREVAL_ANALYSIS_UPDATE_ANALYZER_H_
#define XMLREVAL_ANALYSIS_UPDATE_ANALYZER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "common/result.h"
#include "core/relations.h"
#include "xml/editor.h"
#include "xml/tree.h"

namespace xmlreval::analysis {

enum class Safety : uint8_t { kSafe, kFatal, kUnknown };

const char* SafetyName(Safety s);

/// Verdict for a single operation, plus the composition requirements
/// StreamSession::Classify consumes.
struct OpVerdict {
  Safety safety = Safety::kUnknown;
  /// Static diagnostic string (never owned) naming the rule that fired.
  const char* reason = "";
  /// The verdict holds only if NO other operation of the stream lands in
  /// the subtree of its scope node (set for verdicts that rely on the
  /// untouched subtree: R_sub/R_dis renames, root renames).
  bool exclusive_subtree = false;
  /// The verdict lives in the PARENT's simple content (text edits under a
  /// simple type): its scope node is the parent element, and any sibling
  /// text operation entangles it.
  bool value_scoped = false;
};

class UpdateAnalyzer {
 public:
  /// Compiles the safety tables for `relations`' schema pair. The analyzer
  /// shares ownership of the relations (cache eviction safe).
  static Result<UpdateAnalyzer> Compile(
      std::shared_ptr<const core::TypeRelations> relations);

  // -- Per-operation classification ---------------------------------------
  //
  // Each call classifies one operation applied to the CURRENT (pre-op)
  // state of `doc`. Typing context is recovered by an O(depth) walk from
  // the root using the document's current labels.

  OpVerdict AnalyzeRename(const xml::Document& doc, xml::NodeId node,
                          std::string_view new_label) const;
  OpVerdict AnalyzeInsertElement(const xml::Document& doc, xml::NodeId parent,
                                 std::string_view label) const;
  OpVerdict AnalyzeInsertText(const xml::Document& doc, xml::NodeId parent,
                              std::string_view text) const;
  OpVerdict AnalyzeDeleteLeaf(const xml::Document& doc,
                              xml::NodeId node) const;
  OpVerdict AnalyzeTextEdit(const xml::Document& doc, xml::NodeId node,
                            std::string_view text) const;

  /// Dispatch over a replayable operation (insert references resolve to
  /// their parent for context purposes).
  OpVerdict Analyze(const xml::Document& doc, const xml::EditOp& op) const;

  // -- Table reads (tests / diagnostics) ----------------------------------

  bool InsertNeutral(schema::TypeId target_type, automata::Symbol s) const;
  bool SymbolDoomed(schema::TypeId target_type, automata::Symbol s) const;
  bool EmptyLeafOk(schema::TypeId target_type, automata::Symbol s) const;
  bool RenameIndistinguishable(schema::TypeId target_type, automata::Symbol a,
                               automata::Symbol b) const;

  /// The kSafe gate: the document has a root whose label is typed by both
  /// schemas with a subsumed pair (see header comment).
  bool RootSubsumed(const xml::Document& doc) const;

  /// (source, target) typing of an element under the document's current
  /// labels; kInvalidType marks an unresolvable side.
  struct TypeContext {
    schema::TypeId source_type = schema::kInvalidType;
    schema::TypeId target_type = schema::kInvalidType;
  };
  TypeContext ContextOf(const xml::Document& doc, xml::NodeId node) const;

  const core::TypeRelations& relations() const { return *relations_; }

 private:
  /// Per-target-complex-type tables, indexed by Symbol; symbols interned
  /// after compilation fall off the end and read as "not safe".
  struct TypeTables {
    bool valid = false;  // complex type with a compiled content DFA
    std::vector<bool> neutral;
    std::vector<bool> doomed;
    std::vector<bool> empty_ok;
    std::vector<uint32_t> sym_class;
  };

  friend class AnalyzerCodec;

  UpdateAnalyzer() = default;

  /// The node's symbol through the pair's shared alphabet: the bound symbol
  /// when the document is bound to it, otherwise a find-only lookup.
  automata::Symbol SymbolOf(const xml::Document& doc, xml::NodeId node) const;
  automata::Symbol ResolveLabel(const xml::Document& doc,
                                std::string_view label) const;

  const TypeTables* TablesOf(schema::TypeId target_type) const {
    return target_type < tables_.size() && tables_[target_type].valid
               ? &tables_[target_type]
               : nullptr;
  }

  /// Shared classification of the simple-content value a text operation
  /// produces under a simple-typed parent, or unknown when the resulting
  /// concatenation is not statically determined.
  OpVerdict ClassifySimpleValue(schema::TypeId target_type,
                                std::string_view value) const;

  // Ungated rules; the public Analyze* entry points wrap them with Gate().
  OpVerdict RenameVerdict(const xml::Document& doc, xml::NodeId node,
                          std::string_view new_label) const;
  OpVerdict InsertElementVerdict(const xml::Document& doc, xml::NodeId parent,
                                 std::string_view label) const;
  OpVerdict InsertTextVerdict(const xml::Document& doc, xml::NodeId parent,
                              std::string_view text) const;
  OpVerdict DeleteLeafVerdict(const xml::Document& doc, xml::NodeId node) const;
  OpVerdict TextEditVerdict(const xml::Document& doc, xml::NodeId node,
                            std::string_view text) const;

  /// kSafe additionally requires the root-pair subsumption precondition
  /// (see header comment); without it a would-be-safe verdict degrades to
  /// kUnknown. kFatal verdicts stand on their own — target typing is
  /// label-forced top-down — and pass through untouched.
  OpVerdict Gate(const xml::Document& doc, OpVerdict v) const;

  std::shared_ptr<const core::TypeRelations> relations_;
  const automata::Alphabet* alphabet_ = nullptr;
  std::vector<TypeTables> tables_;  // indexed by target TypeId
};

}  // namespace xmlreval::analysis

#endif  // XMLREVAL_ANALYSIS_UPDATE_ANALYZER_H_
