#include "analysis/update_analyzer.h"

#include <map>
#include <utility>

#include "common/string_util.h"
#include "schema/simple_types.h"

namespace xmlreval::analysis {

using automata::kUnboundSymbol;
using automata::Symbol;
using schema::kInvalidType;
using schema::TypeId;
using xml::kInvalidNode;
using xml::NodeId;

const char* SafetyName(Safety s) {
  switch (s) {
    case Safety::kSafe:
      return "safe";
    case Safety::kFatal:
      return "fatal";
    case Safety::kUnknown:
      return "unknown";
  }
  return "unknown";
}

namespace {

OpVerdict Safe(const char* reason, bool exclusive = false,
               bool value_scoped = false) {
  return OpVerdict{Safety::kSafe, reason, exclusive, value_scoped};
}
OpVerdict Fatal(const char* reason, bool exclusive = false,
                bool value_scoped = false) {
  return OpVerdict{Safety::kFatal, reason, exclusive, value_scoped};
}
OpVerdict Unknown(const char* reason) {
  return OpVerdict{Safety::kUnknown, reason, false, false};
}

bool IsWhitespaceOnly(std::string_view s) {
  return xmlreval::TrimWhitespace(s).empty();
}

}  // namespace

Result<UpdateAnalyzer> UpdateAnalyzer::Compile(
    std::shared_ptr<const core::TypeRelations> relations) {
  if (!relations) {
    return Status::InvalidArgument("UpdateAnalyzer::Compile: null relations");
  }
  UpdateAnalyzer analyzer;
  analyzer.alphabet_ = relations->source().alphabet().get();
  const schema::Schema& target = relations->target();
  analyzer.tables_.resize(target.num_types());
  for (TypeId t = 0; t < target.num_types(); ++t) {
    if (target.IsSimple(t)) continue;
    const automata::Dfa* dfa = relations->TargetDfa(t);
    if (dfa == nullptr) continue;
    TypeTables& tables = analyzer.tables_[t];
    tables.valid = true;
    tables.neutral = dfa->NeutralSymbols();
    tables.doomed = dfa->DoomedSymbols();
    const size_t sigma = dfa->alphabet_size();
    tables.empty_ok.assign(sigma, false);
    for (Symbol s = 0; s < sigma; ++s) {
      TypeId child = target.ChildType(t, s);
      tables.empty_ok[s] =
          child != kInvalidType && relations->TargetAcceptsEmptyElement(child);
    }
    // Canonicalize each symbol's transition column over the reachable
    // states, so rename indistinguishability is one integer compare.
    std::vector<bool> reachable = dfa->ReachableStates();
    std::vector<automata::StateId> live;
    for (automata::StateId q = 0; q < dfa->num_states(); ++q) {
      if (reachable[q]) live.push_back(q);
    }
    tables.sym_class.assign(sigma, 0);
    std::map<std::vector<automata::StateId>, uint32_t> classes;
    std::vector<automata::StateId> column(live.size());
    for (Symbol s = 0; s < sigma; ++s) {
      for (size_t i = 0; i < live.size(); ++i) column[i] = dfa->Next(live[i], s);
      auto [it, inserted] =
          classes.emplace(column, static_cast<uint32_t>(classes.size()));
      tables.sym_class[s] = it->second;
    }
  }
  analyzer.relations_ = std::move(relations);
  return analyzer;
}

Symbol UpdateAnalyzer::ResolveLabel(const xml::Document& doc,
                                    std::string_view label) const {
  (void)doc;
  auto found = alphabet_->Find(label);
  return found ? *found : kUnboundSymbol;
}

Symbol UpdateAnalyzer::SymbolOf(const xml::Document& doc, NodeId node) const {
  if (doc.BoundTo(*alphabet_)) return doc.symbol(node);
  return ResolveLabel(doc, doc.label(node));
}

UpdateAnalyzer::TypeContext UpdateAnalyzer::ContextOf(const xml::Document& doc,
                                                      NodeId node) const {
  TypeContext ctx;
  if (!doc.has_root() || node == kInvalidNode || !doc.IsValidId(node) ||
      !doc.IsElement(node)) {
    return ctx;
  }
  // Chain node → root, then type top-down with the document's CURRENT
  // labels. The typing functions are both functional (one type per label),
  // so this recovers THE source/target typing of the walked path; renames
  // above `node` would falsify the source side, which is why
  // StreamSession::Classify downgrades everything under a renamed node.
  std::vector<NodeId> chain;
  for (NodeId n = node; n != kInvalidNode; n = doc.parent(n)) {
    chain.push_back(n);
  }
  if (chain.back() != doc.root()) return ctx;  // detached node
  const schema::Schema& source = relations_->source();
  const schema::Schema& target = relations_->target();
  Symbol root_sym = SymbolOf(doc, chain.back());
  if (root_sym == kUnboundSymbol) return ctx;
  TypeId s = source.RootType(root_sym);
  TypeId t = target.RootType(root_sym);
  for (size_t i = chain.size() - 1; i-- > 0 && (s != kInvalidType ||
                                                t != kInvalidType);) {
    Symbol sym = SymbolOf(doc, chain[i]);
    if (sym == kUnboundSymbol) {
      s = t = kInvalidType;
      break;
    }
    s = (s != kInvalidType && source.IsComplex(s)) ? source.ChildType(s, sym)
                                                   : kInvalidType;
    t = (t != kInvalidType && target.IsComplex(t)) ? target.ChildType(t, sym)
                                                   : kInvalidType;
  }
  ctx.source_type = s;
  ctx.target_type = t;
  return ctx;
}

bool UpdateAnalyzer::RootSubsumed(const xml::Document& doc) const {
  if (!doc.has_root()) return false;
  Symbol root_sym = SymbolOf(doc, doc.root());
  if (root_sym == kUnboundSymbol) return false;
  TypeId s = relations_->source().RootType(root_sym);
  TypeId t = relations_->target().RootType(root_sym);
  return s != kInvalidType && t != kInvalidType && relations_->Subsumed(s, t);
}

bool UpdateAnalyzer::InsertNeutral(TypeId target_type, Symbol s) const {
  const TypeTables* tables = TablesOf(target_type);
  return tables != nullptr && s < tables->neutral.size() && tables->neutral[s];
}

bool UpdateAnalyzer::SymbolDoomed(TypeId target_type, Symbol s) const {
  const TypeTables* tables = TablesOf(target_type);
  return tables != nullptr && s < tables->doomed.size() && tables->doomed[s];
}

bool UpdateAnalyzer::EmptyLeafOk(TypeId target_type, Symbol s) const {
  const TypeTables* tables = TablesOf(target_type);
  return tables != nullptr && s < tables->empty_ok.size() &&
         tables->empty_ok[s];
}

bool UpdateAnalyzer::RenameIndistinguishable(TypeId target_type, Symbol a,
                                             Symbol b) const {
  const TypeTables* tables = TablesOf(target_type);
  return tables != nullptr && a < tables->sym_class.size() &&
         b < tables->sym_class.size() &&
         tables->sym_class[a] == tables->sym_class[b];
}

OpVerdict UpdateAnalyzer::ClassifySimpleValue(TypeId target_type,
                                              std::string_view value) const {
  const schema::SimpleType& type = relations_->target().simple_type(target_type);
  if (schema::ValidateSimpleValue(type, value).ok()) {
    return Safe("resulting simple value satisfies the target facets",
                /*exclusive=*/false, /*value_scoped=*/true);
  }
  return Fatal("resulting simple value violates the target facets",
               /*exclusive=*/false, /*value_scoped=*/true);
}

OpVerdict UpdateAnalyzer::RenameVerdict(const xml::Document& doc, NodeId node,
                                        std::string_view new_label) const {
  if (!doc.IsValidId(node) || !doc.IsElement(node)) {
    return Unknown("rename target is not a live element");
  }
  const schema::Schema& source = relations_->source();
  const schema::Schema& target = relations_->target();
  Symbol new_sym = ResolveLabel(doc, new_label);
  Symbol old_sym = SymbolOf(doc, node);

  if (node == doc.root()) {
    if (new_sym == kUnboundSymbol) return Unknown("new root label outside Σ");
    TypeId t_new = target.RootType(new_sym);
    if (t_new == kInvalidType) {
      return Fatal("new root label not typed by the target schema");
    }
    TypeId s_old =
        old_sym == kUnboundSymbol ? kInvalidType : source.RootType(old_sym);
    if (s_old == kInvalidType) return Unknown("old root label untyped");
    if (relations_->Subsumed(s_old, t_new)) {
      return Safe("root rename to a subsumed type pair", /*exclusive=*/true);
    }
    if (relations_->Disjoint(s_old, t_new)) {
      return Fatal("root rename to a disjoint type pair", /*exclusive=*/true);
    }
    return Unknown("root rename to an incomparable type pair");
  }

  TypeContext ctx = ContextOf(doc, doc.parent(node));
  TypeId t_par = ctx.target_type;
  if (t_par == kInvalidType) return Unknown("parent has no target typing");
  const TypeTables* tables = TablesOf(t_par);
  if (tables == nullptr) return Unknown("parent target type has no tables");
  if (new_sym == kUnboundSymbol) return Unknown("new label outside Σ");
  if (new_sym < tables->doomed.size() && tables->doomed[new_sym]) {
    return Fatal("new label can never appear in the parent's content model");
  }
  if (old_sym == kUnboundSymbol) return Unknown("old label outside Σ");
  if (new_sym >= tables->sym_class.size() ||
      old_sym >= tables->sym_class.size() ||
      tables->sym_class[new_sym] != tables->sym_class[old_sym]) {
    return Unknown("labels distinguishable in the parent's content model");
  }
  TypeId t_old = target.ChildType(t_par, old_sym);
  TypeId t_new = target.ChildType(t_par, new_sym);
  if (t_new == kInvalidType) return Unknown("new label untyped under parent");
  if (t_new == t_old) {
    // Content run unchanged (indistinguishable) and the child's target type
    // unchanged: the subtree needs no revalidation at all.
    return Safe("rename within one target type");
  }
  TypeId s_old = (ctx.source_type != kInvalidType &&
                  source.IsComplex(ctx.source_type))
                     ? source.ChildType(ctx.source_type, old_sym)
                     : kInvalidType;
  if (s_old == kInvalidType) return Unknown("node has no source typing");
  if (relations_->Subsumed(s_old, t_new)) {
    return Safe("rename to a subsumed target type", /*exclusive=*/true);
  }
  if (relations_->Disjoint(s_old, t_new)) {
    return Fatal("rename to a disjoint target type", /*exclusive=*/true);
  }
  return Unknown("rename to an incomparable target type");
}

OpVerdict UpdateAnalyzer::InsertElementVerdict(const xml::Document& doc,
                                               NodeId parent,
                                               std::string_view label) const {
  if (!doc.IsValidId(parent) || !doc.IsElement(parent)) {
    return Unknown("insert parent is not a live element");
  }
  TypeContext ctx = ContextOf(doc, parent);
  TypeId t_par = ctx.target_type;
  if (t_par == kInvalidType) return Unknown("parent has no target typing");
  if (relations_->target().IsSimple(t_par)) {
    return Fatal("element inserted under simple content");
  }
  const TypeTables* tables = TablesOf(t_par);
  if (tables == nullptr) return Unknown("parent target type has no tables");
  Symbol sym = ResolveLabel(doc, label);
  if (sym == kUnboundSymbol) return Unknown("inserted label outside Σ");
  if (sym < tables->doomed.size() && tables->doomed[sym]) {
    return Fatal("inserted label can never appear in the parent's content "
                 "model");
  }
  if (sym < tables->neutral.size() && tables->neutral[sym] &&
      sym < tables->empty_ok.size() && tables->empty_ok[sym]) {
    return Safe("content-neutral insert of an empty-admitting type");
  }
  return Unknown("insert not statically neutral");
}

OpVerdict UpdateAnalyzer::InsertTextVerdict(const xml::Document& doc,
                                            NodeId parent,
                                            std::string_view text) const {
  if (!doc.IsValidId(parent) || !doc.IsElement(parent)) {
    return Unknown("insert parent is not a live element");
  }
  TypeContext ctx = ContextOf(doc, parent);
  TypeId t_par = ctx.target_type;
  if (t_par == kInvalidType) return Unknown("parent has no target typing");
  if (relations_->target().IsComplex(t_par)) {
    return IsWhitespaceOnly(text)
               ? Safe("whitespace text under complex content")
               : Fatal("non-whitespace text under complex content");
  }
  // Simple content: only the trivial case — a childless parent — yields a
  // statically known resulting value (the position of the new text among
  // existing children is not part of the operation shape here).
  if (doc.HasChildren(parent)) {
    return Unknown("text inserted next to existing simple content");
  }
  return ClassifySimpleValue(t_par, text);
}

OpVerdict UpdateAnalyzer::DeleteLeafVerdict(const xml::Document& doc,
                                            NodeId node) const {
  if (!doc.IsValidId(node)) return Unknown("delete target invalid");
  if (node == doc.root()) return Unknown("cannot analyze root deletion");
  NodeId parent = doc.parent(node);
  if (parent == kInvalidNode) return Unknown("delete target detached");
  TypeContext ctx = ContextOf(doc, parent);
  TypeId t_par = ctx.target_type;
  if (t_par == kInvalidType) return Unknown("parent has no target typing");
  const schema::Schema& target = relations_->target();

  if (doc.IsText(node)) {
    if (target.IsComplex(t_par)) {
      // Removing character data can only help an element-only content
      // model (remaining text children are untouched).
      return Safe("text removal under complex content");
    }
    // Simple content: the resulting value is the remaining concatenation.
    std::string remaining;
    for (NodeId c = doc.first_child(parent); c != kInvalidNode;
         c = doc.next_sibling(c)) {
      if (doc.IsElement(c)) {
        return Unknown("simple-typed parent has element children");
      }
      if (c != node) remaining += doc.text(c);
    }
    return ClassifySimpleValue(t_par, remaining);
  }

  if (target.IsSimple(t_par)) {
    return Unknown("element deletion under simple content");
  }
  const TypeTables* tables = TablesOf(t_par);
  if (tables == nullptr) return Unknown("parent target type has no tables");
  Symbol sym = SymbolOf(doc, node);
  if (sym == kUnboundSymbol) return Unknown("deleted label outside Σ");
  if (sym < tables->neutral.size() && tables->neutral[sym]) {
    return Safe("content-neutral delete");
  }
  return Unknown("delete not statically neutral");
}

OpVerdict UpdateAnalyzer::TextEditVerdict(const xml::Document& doc, NodeId node,
                                          std::string_view text) const {
  if (!doc.IsValidId(node) || !doc.IsText(node)) {
    return Unknown("text-edit target is not a text node");
  }
  NodeId parent = doc.parent(node);
  if (parent == kInvalidNode) return Unknown("text-edit target detached");
  TypeContext ctx = ContextOf(doc, parent);
  TypeId t_par = ctx.target_type;
  if (t_par == kInvalidType) return Unknown("parent has no target typing");
  if (relations_->target().IsComplex(t_par)) {
    return IsWhitespaceOnly(text)
               ? Safe("whitespace text under complex content")
               : Fatal("non-whitespace text under complex content");
  }
  // Simple content: splice the new value into the concatenation.
  std::string value;
  for (NodeId c = doc.first_child(parent); c != kInvalidNode;
       c = doc.next_sibling(c)) {
    if (doc.IsElement(c)) {
      return Unknown("simple-typed parent has element children");
    }
    if (c == node) {
      value += text;
    } else {
      value += doc.text(c);
    }
  }
  return ClassifySimpleValue(t_par, value);
}

OpVerdict UpdateAnalyzer::Gate(const xml::Document& doc, OpVerdict v) const {
  if (v.safety == Safety::kSafe && !RootSubsumed(doc)) {
    return Unknown("document root pair not subsumed");
  }
  return v;
}

OpVerdict UpdateAnalyzer::AnalyzeRename(const xml::Document& doc,
                                        NodeId node,
                                        std::string_view new_label) const {
  return Gate(doc, RenameVerdict(doc, node, new_label));
}

OpVerdict UpdateAnalyzer::AnalyzeInsertElement(const xml::Document& doc,
                                               NodeId parent,
                                               std::string_view label) const {
  return Gate(doc, InsertElementVerdict(doc, parent, label));
}

OpVerdict UpdateAnalyzer::AnalyzeInsertText(const xml::Document& doc,
                                            NodeId parent,
                                            std::string_view text) const {
  return Gate(doc, InsertTextVerdict(doc, parent, text));
}

OpVerdict UpdateAnalyzer::AnalyzeDeleteLeaf(const xml::Document& doc,
                                            NodeId node) const {
  return Gate(doc, DeleteLeafVerdict(doc, node));
}

OpVerdict UpdateAnalyzer::AnalyzeTextEdit(const xml::Document& doc,
                                          NodeId node,
                                          std::string_view text) const {
  return Gate(doc, TextEditVerdict(doc, node, text));
}

OpVerdict UpdateAnalyzer::Analyze(const xml::Document& doc,
                                  const xml::EditOp& op) const {
  using Kind = xml::EditOp::Kind;
  auto parent_of = [&](NodeId ref) {
    return doc.IsValidId(ref) ? doc.parent(ref) : kInvalidNode;
  };
  switch (op.kind) {
    case Kind::kRename:
      return AnalyzeRename(doc, op.node, op.value);
    case Kind::kInsertElementFirstChild:
      return AnalyzeInsertElement(doc, op.node, op.value);
    case Kind::kInsertElementBefore:
    case Kind::kInsertElementAfter:
      return AnalyzeInsertElement(doc, parent_of(op.node), op.value);
    case Kind::kInsertTextFirstChild:
      return AnalyzeInsertText(doc, op.node, op.value);
    case Kind::kInsertTextBefore:
    case Kind::kInsertTextAfter:
      return AnalyzeInsertText(doc, parent_of(op.node), op.value);
    case Kind::kDeleteLeaf:
      return AnalyzeDeleteLeaf(doc, op.node);
    case Kind::kUpdateText:
      return AnalyzeTextEdit(doc, op.node, op.value);
  }
  return Unknown("unknown operation kind");
}

}  // namespace xmlreval::analysis
