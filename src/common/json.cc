#include "common/json.h"

#include <cctype>
#include <cstdlib>

#include "common/macros.h"

namespace xmlreval::json {

bool Value::AsBool() const {
  XMLREVAL_CHECK(is_bool(), "json::Value is not a bool");
  return bool_;
}

double Value::AsNumber() const {
  XMLREVAL_CHECK(is_number(), "json::Value is not a number");
  return number_;
}

const std::string& Value::AsString() const {
  XMLREVAL_CHECK(is_string(), "json::Value is not a string");
  return string_;
}

const Array& Value::AsArray() const {
  XMLREVAL_CHECK(is_array(), "json::Value is not an array");
  return *array_;
}

const Object& Value::AsObject() const {
  XMLREVAL_CHECK(is_object(), "json::Value is not an object");
  return *object_;
}

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  auto it = object_->find(std::string(key));
  return it == object_->end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    ASSIGN_OR_RETURN(Value value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth_};
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      ASSIGN_OR_RETURN(std::string s, ParseString());
      return Value(std::move(s));
    }
    if (ConsumeWord("true")) return Value(true);
    if (ConsumeWord("false")) return Value(false);
    if (ConsumeWord("null")) return Value();
    return ParseNumber();
  }

  Result<Value> ParseObject() {
    Consume('{');
    Object object;
    SkipWhitespace();
    if (Consume('}')) return Value(std::move(object));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      ASSIGN_OR_RETURN(Value value, ParseValue());
      object.insert_or_assign(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value(std::move(object));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray() {
    Consume('[');
    Array array;
    SkipWhitespace();
    if (Consume(']')) return Value(std::move(array));
    while (true) {
      ASSIGN_OR_RETURN(Value value, ParseValue());
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value(std::move(array));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else return Error("bad hex digit in \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // recombined — nothing xmlreval writes uses them).
            if (code < 0x80) {
              out += char(code);
            } else if (code < 0x800) {
              out += char(0xC0 | (code >> 6));
              out += char(0x80 | (code & 0x3F));
            } else {
              out += char(0xE0 | (code >> 12));
              out += char(0x80 | ((code >> 6) & 0x3F));
              out += char(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown escape sequence");
        }
        continue;
      }
      out += c;
    }
    return Error("unterminated string");
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("malformed number");
    return Value(number);
  }

  static constexpr int kMaxDepth = 128;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace xmlreval::json
