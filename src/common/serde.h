// Little-endian binary serialization primitives for the plan cache.
//
// ByteWriter builds a byte buffer; ByteReader walks one with hard bounds
// checking — any overrun or malformed field flips a sticky error flag and
// every subsequent read returns a zero value, so decoders can run to
// completion on corrupt input and test ok() once (no exceptions, no UB).
// Raw() returns pointers INTO the reader's buffer, which is what lets the
// plan loader hand mmap'd table bytes to Dfa::FromExternal without copying;
// AlignTo keeps those tables naturally aligned relative to the buffer start
// (the mmap base is page-aligned, so buffer-relative alignment suffices).
//
// The format is explicitly little-endian: writers memcpy host-order values
// (every supported target is LE), and the plan header carries an endianness
// tag so a big-endian reader rejects the artifact instead of mis-decoding.

#ifndef XMLREVAL_COMMON_SERDE_H_
#define XMLREVAL_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace xmlreval::common {

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Append(&v, sizeof(v)); }
  void U64(uint64_t v) { Append(&v, sizeof(v)); }
  void I64(int64_t v) { Append(&v, sizeof(v)); }
  void Bytes(const void* data, size_t n) { Append(data, n); }

  /// u32 length prefix + raw bytes.
  void String(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Append(s.data(), s.size());
  }

  /// Pads with zero bytes until the buffer offset is a multiple of `a`.
  void AlignTo(size_t a) {
    while (buf_.size() % a != 0) buf_.push_back('\0');
  }

  size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void Append(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  std::string buf_;
};

class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}

  uint8_t U8() {
    uint8_t v = 0;
    Extract(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Extract(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Extract(&v, sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    Extract(&v, sizeof(v));
    return v;
  }

  /// View of the next `n` raw bytes, or nullptr (error flagged) on overrun.
  /// The pointer aliases the reader's buffer and stays valid as long as the
  /// buffer does — for mmap-backed readers, as long as the mapping.
  const uint8_t* Raw(size_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return nullptr;
    }
    const uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  /// Counterpart of ByteWriter::String. Empty view on error.
  std::string_view String() {
    uint32_t n = U32();
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return {};
    }
    std::string_view s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  void AlignTo(size_t a) {
    while (ok_ && pos_ % a != 0) U8();
  }

  /// Sticky success flag; false after any overrun. Decoders may also call
  /// Fail() when a decoded VALUE is out of range.
  bool ok() const { return ok_; }
  void Fail() { ok_ = false; }

  size_t position() const { return pos_; }
  size_t remaining() const { return ok_ ? size_ - pos_ : 0; }

 private:
  void Extract(void* out, size_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// FNV-1a over a byte range — the plan payload checksum. Not cryptographic;
/// it guards against truncation and bit rot, not adversaries.
inline constexpr uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnv1aPrime = 0x100000001b3ull;

inline uint64_t Fnv1a(const void* data, size_t n,
                      uint64_t seed = kFnv1aOffset) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

inline uint64_t Fnv1a(std::string_view s, uint64_t seed = kFnv1aOffset) {
  return Fnv1a(s.data(), s.size(), seed);
}

}  // namespace xmlreval::common

#endif  // XMLREVAL_COMMON_SERDE_H_
