// Result<T>: a value or an error Status.
//
// The ASSIGN_OR_RETURN / RETURN_IF_ERROR macros in macros.h give the usual
// ergonomic propagation style.

#ifndef XMLREVAL_COMMON_RESULT_H_
#define XMLREVAL_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace xmlreval {

/// Holds either a T or a non-OK Status. Accessing the value of an errored
/// Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value, so `return value;` works in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace xmlreval

#endif  // XMLREVAL_COMMON_RESULT_H_
