#include "common/executor.h"

#include <utility>

namespace xmlreval::common {

namespace {

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// Worker identity for Submit's fast path. An executor pointer plus index:
// a thread belongs to at most one executor for its whole lifetime, so a
// plain thread_local needs no cleanup.
thread_local const Executor* tls_executor = nullptr;
thread_local size_t tls_worker_index = 0;

}  // namespace

Executor::Executor(const Options& options)
    : depth_hook_(options.depth_hook),
      task_wrapper_(options.task_wrapper),
      injection_(options.queue_capacity) {
  size_t threads = ResolveThreads(options.threads);
  deques_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Executor::~Executor() { Shutdown(); }

bool Executor::OnWorkerThread() const { return tls_executor == this; }

void Executor::OnQueued() {
  queued_.fetch_add(1, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (depth_hook_) depth_hook_(+1);
}

void Executor::OnPicked() {
  queued_.fetch_sub(1, std::memory_order_relaxed);
  if (depth_hook_) depth_hook_(-1);
}

bool Executor::Submit(Task task) {
  // Wrap on the submitting thread, so the wrapper can capture this
  // thread's context before the task crosses to a worker.
  if (task_wrapper_) task = task_wrapper_(std::move(task));
  if (tls_executor == this) {
    WorkerDeque& own = *deques_[tls_worker_index];
    {
      std::lock_guard lock(own.mutex);
      own.tasks.push_back(std::move(task));
    }
    OnQueued();
    NotifyWork();
    return true;
  }
  if (!injection_.Push(std::move(task))) return false;
  OnQueued();
  NotifyWork();
  return true;
}

void Executor::NotifyWork() {
  {
    std::lock_guard lock(sleep_mutex_);
    ++wake_epoch_;
  }
  sleep_cv_.notify_one();
}

bool Executor::TryAcquire(size_t self, Task* task, bool* stolen) {
  // Own deque first, LIFO side.
  {
    WorkerDeque& own = *deques_[self];
    std::lock_guard lock(own.mutex);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      *stolen = false;
      return true;
    }
  }
  // Injection queue next: external work is older than anything stealable.
  if (std::optional<Task> injected = injection_.TryPop()) {
    *task = std::move(*injected);
    *stolen = false;
    return true;
  }
  // Steal FIFO from peers, round-robin from the right neighbor.
  for (size_t k = 1; k < deques_.size(); ++k) {
    WorkerDeque& victim = *deques_[(self + k) % deques_.size()];
    std::lock_guard lock(victim.mutex);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      *stolen = true;
      return true;
    }
  }
  return false;
}

void Executor::WorkerLoop(size_t index) {
  tls_executor = this;
  tls_worker_index = index;
  for (;;) {
    // Capture the epoch BEFORE scanning: any submission after this point
    // bumps it, so the wait below returns immediately instead of missing
    // the task.
    uint64_t epoch;
    {
      std::lock_guard lock(sleep_mutex_);
      epoch = wake_epoch_;
    }
    Task task;
    bool stolen = false;
    bool acquired = TryAcquire(index, &task, &stolen);
    if (!acquired && stop_.load(std::memory_order_acquire)) {
      // The empty scan above may have raced with an external Submit whose
      // Push was accepted just before Close(): scan sees nothing, the Push
      // lands, Close returns, stop_ is set. The acquire-load of stop_
      // synchronizes with the release-store that follows Close, and the
      // Push happened-before Close (queue mutex), so one post-stop rescan
      // is guaranteed to see any pre-Close push. Exit only when that
      // rescan also finds nothing: remaining work can then only be spawned
      // by tasks still running on OTHER workers, and those workers drain
      // their own spawns before exiting.
      acquired = TryAcquire(index, &task, &stolen);
      if (!acquired) return;
    }
    if (acquired) {
      OnPicked();
      executed_.fetch_add(1, std::memory_order_relaxed);
      if (stolen) stolen_.fetch_add(1, std::memory_order_relaxed);
      task();
      task = nullptr;  // release captures before the next scan
      continue;
    }
    idle_workers_.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock lock(sleep_mutex_);
      sleep_cv_.wait(lock, [&] {
        return wake_epoch_ != epoch || stop_.load(std::memory_order_acquire);
      });
    }
    idle_workers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Executor::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    injection_.Close();  // refuse new external work; accepted items remain
    stop_.store(true, std::memory_order_release);
    {
      std::lock_guard lock(sleep_mutex_);
      ++wake_epoch_;
    }
    sleep_cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  });
}

Executor::Stats Executor::stats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.stolen = stolen_.load(std::memory_order_relaxed);
  return stats;
}

void TaskGroup::Spawn(Executor::Task task) {
  {
    std::lock_guard lock(mutex_);
    ++pending_;
  }
  // Shared holder so the task survives a refused Submit (a moved-from
  // std::function cannot be re-run). Submit fails only when the executor
  // is shutting down; the spawning thread then runs the task inline so
  // Wait still converges.
  auto holder = std::make_shared<Executor::Task>(std::move(task));
  auto wrapped = [this, holder] {
    (*holder)();
    Finish();
  };
  if (!executor_->Submit(wrapped)) wrapped();
}

void TaskGroup::Finish() {
  std::lock_guard lock(mutex_);
  if (--pending_ == 0) done_cv_.notify_all();
}

void TaskGroup::Wait() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

}  // namespace xmlreval::common

