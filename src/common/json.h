// Minimal JSON value model and recursive-descent parser.
//
// The observability layer emits JSON (metrics snapshots, Chrome trace
// events) that other parts of the system read back: the `xmlreval stats`
// subcommand pretty-prints a dumped snapshot, the CI smoke job reconciles
// histogram counts against request counters, and the trace golden test
// schema-checks the exported events. This is the shared reader — a small,
// strict subset of RFC 8259 (no surrogate-pair decoding beyond pass-through,
// numbers as double) sufficient for everything xmlreval itself writes.

#ifndef XMLREVAL_COMMON_JSON_H_
#define XMLREVAL_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace xmlreval::json {

class Value;
using Array = std::vector<Value>;
/// std::map keeps object keys ordered, which makes test output stable.
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}                 // NOLINT
  Value(double n) : kind_(Kind::kNumber), number_(n) {}           // NOLINT
  Value(std::string s)                                            // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}
  Value(Array a)                                                  // NOLINT
      : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o)                                                 // NOLINT
      : kind_(Kind::kObject),
        object_(std::make_shared<Object>(std::move(o))) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one on a value is a programming
  /// error (checked), not a parse error.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;

  /// Object member by key, or nullptr when absent / not an object.
  const Value* Find(std::string_view key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  // shared_ptr keeps Value copyable without recursive-by-value members.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
Result<Value> Parse(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (no quotes).
std::string Escape(std::string_view s);

}  // namespace xmlreval::json

#endif  // XMLREVAL_COMMON_JSON_H_
