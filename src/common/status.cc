#include "common/status.h"

namespace xmlreval {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kInvalidSchema:
      return "invalid-schema";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDataLoss:
      return "data-loss";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace xmlreval
