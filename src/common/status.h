// Status: error propagation without exceptions.
//
// xmlreval follows the Arrow/RocksDB idiom for database-grade C++: fallible
// library operations return a Status (or a Result<T>, see result.h) rather
// than throwing. A Status is cheap to copy in the OK case (no allocation)
// and carries a code plus a human-readable, position-annotated message in
// the error case.

#ifndef XMLREVAL_COMMON_STATUS_H_
#define XMLREVAL_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace xmlreval {

/// Error category for a Status.
enum class StatusCode : int {
  kOk = 0,
  /// Malformed input to a parser (XML, DTD, XSD, regex).
  kParseError = 1,
  /// Structurally well-formed input that violates a semantic rule
  /// (e.g. a content model that is not 1-unambiguous).
  kInvalidSchema = 2,
  /// An argument outside the function's contract.
  kInvalidArgument = 3,
  /// A lookup that found nothing (unknown type name, unknown element).
  kNotFound = 4,
  /// An operation applied in a state that does not permit it.
  kFailedPrecondition = 5,
  /// Feature intentionally outside the supported subset.
  kUnsupported = 6,
  /// Internal invariant violation; indicates a bug in xmlreval itself.
  kInternal = 7,
  /// Stored data (a plan-cache artifact) is truncated, corrupt, or written
  /// by an incompatible format version. Always recoverable by recompiling.
  kDataLoss = 8,
};

/// Returns the canonical lowercase name of a status code ("parse-error"...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: OK, or a code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status InvalidSchema(std::string msg) {
    return Status(StatusCode::kInvalidSchema, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Returns a copy with `context` prepended to the message, for layering
  /// location information as an error propagates upward. No-op on OK.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Shared so copies are cheap; null means OK.
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace xmlreval

#endif  // XMLREVAL_COMMON_STATUS_H_
