// Executor — a fixed-size work-stealing thread pool.
//
// Generalizes the service layer's old ThreadPool (FIFO over one shared
// BoundedQueue) into the scheduling substrate both the batch pipeline and
// the parallel cast engine run on:
//
//   * External submissions (any non-worker thread) go through a bounded
//     injection queue — Submit blocks while it is full (backpressure, not
//     unbounded buffering) and returns false only after Shutdown, exactly
//     the old ThreadPool contract.
//   * Worker-side submissions (a task spawning subtasks) push onto the
//     submitting worker's own deque — never blocking, never failing — so
//     divide-and-conquer work can fan out without deadlocking on its own
//     backpressure.
//   * Each worker pops its own deque LIFO (back) for locality; idle
//     workers steal FIFO (front) from their peers, which for the cast
//     engine's document-order stacks hands thieves the largest pending
//     subtree spans.
//
// Wake protocol: a sleeper re-checks every queue after capturing the wake
// epoch, and every submission bumps the epoch before notifying, so a task
// enqueued between "scan found nothing" and "wait" is never missed.
// Shutdown closes the injection queue, then drains: every task accepted
// before Close — plus anything running tasks spawn while draining — runs
// before the workers exit.
//
// HasIdleWorker() is the donation heuristic for lazy splitting: a relaxed
// read of the number of workers currently parked (or about to park). It
// may be stale in either direction; callers use it to decide whether
// splitting their work could possibly help, not for correctness. With one
// worker executing, it reads 0 — so single-threaded runs never split.

#ifndef XMLREVAL_COMMON_EXECUTOR_H_
#define XMLREVAL_COMMON_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"

namespace xmlreval::common {

class Executor {
 public:
  using Task = std::function<void()>;

  struct Options {
    /// Worker count; 0 = std::thread::hardware_concurrency (min 1).
    size_t threads = 0;
    /// Injection-queue capacity for EXTERNAL Submits (backpressure
    /// threshold). Worker-side submits bypass it and never block.
    size_t queue_capacity = 256;
    /// Called with +1 when a task is queued and -1 when a worker picks it
    /// up; lets the owner mirror QueueDepth() into a metrics gauge without
    /// the executor depending on the obs layer. Must be thread-safe.
    std::function<void(int64_t)> depth_hook;
    /// Applied to every task at Submit time, ON THE SUBMITTING thread:
    /// the task actually enqueued is task_wrapper(task). Lets the owner
    /// capture submission-side context (e.g. the obs TraceContext) and
    /// reinstall it around execution on whichever worker runs the task,
    /// without the executor depending on the obs layer. Must be
    /// thread-safe; null means tasks are enqueued as submitted.
    std::function<Task(Task)> task_wrapper;
  };

  /// Cumulative scheduling counters (relaxed; read for tests/diagnostics).
  struct Stats {
    uint64_t submitted = 0;  // accepted tasks, external + worker-side
    uint64_t executed = 0;
    uint64_t stolen = 0;  // executed tasks taken from another worker's deque
  };

  explicit Executor(const Options& options);
  Executor() : Executor(Options{}) {}
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;
  ~Executor();

  /// Enqueues a task. From a worker thread of THIS executor: pushed onto
  /// that worker's deque, always accepted (even while shutting down, so
  /// draining tasks can still fan out). From any other thread: blocks
  /// while the injection queue is full and returns false once Shutdown has
  /// begun (the task is dropped).
  bool Submit(Task task);

  /// Stops accepting external tasks, drains everything already accepted,
  /// joins the workers. Idempotent.
  void Shutdown();

  size_t thread_count() const { return workers_.size(); }

  /// True when some worker is parked waiting for work (advisory; see
  /// header comment).
  bool HasIdleWorker() const {
    return idle_workers_.load(std::memory_order_relaxed) > 0;
  }

  /// Tasks queued and not yet picked up (injection queue + all deques).
  size_t QueueDepth() const {
    int64_t depth = queued_.load(std::memory_order_relaxed);
    return depth > 0 ? static_cast<size_t>(depth) : 0;
  }

  Stats stats() const;

  /// True when the calling thread is one of this executor's workers.
  bool OnWorkerThread() const;

 private:
  struct WorkerDeque {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t index);
  bool TryAcquire(size_t self, Task* task, bool* stolen);
  void NotifyWork();
  void OnQueued();
  void OnPicked();

  const std::function<void(int64_t)> depth_hook_;
  const std::function<Task(Task)> task_wrapper_;
  BoundedQueue<Task> injection_;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> workers_;

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  uint64_t wake_epoch_ = 0;  // guarded by sleep_mutex_
  std::atomic<bool> stop_{false};

  std::atomic<int64_t> idle_workers_{0};
  std::atomic<int64_t> queued_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> stolen_{0};

  std::once_flag shutdown_once_;
};

/// TaskGroup — completion tracking for a fan-out of executor tasks.
///
/// Spawn wraps each task with a pending count; Wait blocks (without
/// helping) until every spawned task — including tasks spawned by tasks —
/// has finished. If the executor refuses a spawn (external submit after
/// Shutdown), the task runs inline on the spawning thread so the count
/// still converges.
class TaskGroup {
 public:
  explicit TaskGroup(Executor* executor) : executor_(executor) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  /// All spawned tasks must have completed (callers Wait before
  /// destroying the group).
  ~TaskGroup() = default;

  void Spawn(Executor::Task task);
  void Wait();

 private:
  void Finish();

  Executor* executor_;
  std::mutex mutex_;
  std::condition_variable done_cv_;
  size_t pending_ = 0;  // guarded by mutex_
};

}  // namespace xmlreval::common

#endif  // XMLREVAL_COMMON_EXECUTOR_H_
