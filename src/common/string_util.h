// Small string utilities shared by the parsers and serializers.

#ifndef XMLREVAL_COMMON_STRING_UTIL_H_
#define XMLREVAL_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace xmlreval {

/// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view TrimWhitespace(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string_view> SplitString(std::string_view s, char sep);

/// True iff `c` is XML whitespace (space, tab, CR, LF).
inline bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// True iff every byte of `s` is XML whitespace (vacuously true when
/// empty). SIMD over 16-byte blocks (SSE2 / NEON) with a portable scalar
/// fallback — the validators' ignorable-text test runs this over whole
/// text payloads straight out of the document's string arena.
bool IsAllXmlWhitespace(std::string_view s);

/// True iff `c` may start an XML name (ASCII subset: letter, '_' or ':').
bool IsNameStartChar(char c);

/// True iff `c` may continue an XML name (adds digits, '-', '.').
bool IsNameChar(char c);

/// True iff `s` is a non-empty XML name over the ASCII subset.
bool IsValidXmlName(std::string_view s);

/// Escapes '&', '<', '>', '"', '\'' for XML text/attribute output.
std::string EscapeXmlText(std::string_view s);

/// Parses a decimal integer (optional leading '-'); rejects trailing junk.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a decimal number with optional fraction as a scaled integer pair
/// suitable for exact facet comparison: returns value * 10^9 clamped into
/// int64 range. Accepts forms like "-12", "3.5", ".25".
Result<int64_t> ParseDecimalScaled(std::string_view s);

/// Formats "a, b, c" from a vector of strings (for diagnostics).
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Concatenates string-view-convertible pieces into one string with a single
/// reserve+append pass. The validators build failure messages with this at
/// the exact point a verdict becomes a failure, so success paths never pay
/// for diagnostics.
template <typename... Pieces>
std::string StrCat(const Pieces&... pieces) {
  size_t total = (std::string_view(pieces).size() + ... + 0);
  std::string out;
  out.reserve(total);
  (out.append(std::string_view(pieces)), ...);
  return out;
}

}  // namespace xmlreval

#endif  // XMLREVAL_COMMON_STRING_UTIL_H_
