// BoundedQueue<T> — a bounded, blocking MPMC work queue.
//
// The executor's external-submission (and formerly the batch pipeline's)
// backpressure primitive: producers block in Push when the queue is full,
// so a caller submitting a huge batch can never balloon memory past
// `capacity` in-flight items; consumers block in Pop when it is empty.
// Close() wakes everyone: pending items still drain, then Pop returns
// nullopt and further Pushes are refused.
//
// Plain two-condition-variable design over a ring deque. The queue moves
// std::functions around, never user payloads on the validation hot path, so
// a lock-free ring buys nothing here measurable against a fixpoint or even
// a document parse.

#ifndef XMLREVAL_COMMON_BOUNDED_QUEUE_H_
#define XMLREVAL_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace xmlreval::common {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1.
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false (dropping `item`) once closed.
  bool Push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed AND drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop: nullopt when empty (regardless of closed state —
  /// accepted items always drain). The executor's workers poll with this
  /// between deque scans instead of parking on the queue's own CV.
  std::optional<T> TryPop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Refuses further Pushes and unblocks all waiters. Idempotent.
  void Close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace xmlreval::common

#endif  // XMLREVAL_COMMON_BOUNDED_QUEUE_H_
