// Error-propagation and invariant macros shared across xmlreval.

#ifndef XMLREVAL_COMMON_MACROS_H_
#define XMLREVAL_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

#define XMLREVAL_CONCAT_IMPL(a, b) a##b
#define XMLREVAL_CONCAT(a, b) XMLREVAL_CONCAT_IMPL(a, b)

/// Propagates a non-OK Status from the current function.
#define RETURN_IF_ERROR(expr)                             \
  do {                                                    \
    ::xmlreval::Status _st = (expr);                      \
    if (!_st.ok()) return _st;                            \
  } while (0)

/// Evaluates a Result-returning expression; on error returns the Status,
/// otherwise assigns the value to `lhs` (which may be a declaration).
#define ASSIGN_OR_RETURN(lhs, rexpr) \
  ASSIGN_OR_RETURN_IMPL(XMLREVAL_CONCAT(_result_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                          \
  if (!tmp.ok()) return tmp.status();          \
  lhs = std::move(tmp).value()

/// Fatal invariant check, active in all build modes. Validation hot paths
/// avoid it; it guards structural invariants whose violation means a bug.
#define XMLREVAL_CHECK(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, msg);                                        \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // XMLREVAL_COMMON_MACROS_H_
