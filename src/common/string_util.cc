#include "common/string_util.h"

#include <cctype>
#include <limits>

#if defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace xmlreval {

bool IsAllXmlWhitespace(std::string_view s) {
  const char* p = s.data();
  size_t n = s.size();
#if defined(__SSE2__)
  const __m128i sp = _mm_set1_epi8(' ');
  const __m128i tb = _mm_set1_epi8('\t');
  const __m128i cr = _mm_set1_epi8('\r');
  const __m128i lf = _mm_set1_epi8('\n');
  while (n >= 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    __m128i ws = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(v, sp), _mm_cmpeq_epi8(v, tb)),
        _mm_or_si128(_mm_cmpeq_epi8(v, cr), _mm_cmpeq_epi8(v, lf)));
    if (_mm_movemask_epi8(ws) != 0xFFFF) return false;
    p += 16;
    n -= 16;
  }
#elif defined(__aarch64__)
  const uint8x16_t sp = vdupq_n_u8(' ');
  const uint8x16_t tb = vdupq_n_u8('\t');
  const uint8x16_t cr = vdupq_n_u8('\r');
  const uint8x16_t lf = vdupq_n_u8('\n');
  while (n >= 16) {
    uint8x16_t v = vld1q_u8(reinterpret_cast<const uint8_t*>(p));
    uint8x16_t ws = vorrq_u8(vorrq_u8(vceqq_u8(v, sp), vceqq_u8(v, tb)),
                             vorrq_u8(vceqq_u8(v, cr), vceqq_u8(v, lf)));
    if (vminvq_u8(ws) != 0xFF) return false;
    p += 16;
    n -= 16;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    if (!IsXmlWhitespace(p[i])) return false;
  }
  return true;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsXmlWhitespace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsXmlWhitespace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> SplitString(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsValidXmlName(std::string_view s) {
  if (s.empty() || !IsNameStartChar(s[0])) return false;
  for (size_t i = 1; i < s.size(); ++i) {
    if (!IsNameChar(s[i])) return false;
  }
  return true;
}

std::string EscapeXmlText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::ParseError("empty integer literal");
  bool negative = false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    negative = (s[0] == '-');
    i = 1;
  }
  if (i == s.size()) return Status::ParseError("sign without digits");
  int64_t value = 0;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c < '0' || c > '9') {
      return Status::ParseError("invalid digit in integer literal: '" +
                                std::string(s) + "'");
    }
    int digit = c - '0';
    if (value > (std::numeric_limits<int64_t>::max() - digit) / 10) {
      return Status::ParseError("integer literal out of range: '" +
                                std::string(s) + "'");
    }
    value = value * 10 + digit;
  }
  return negative ? -value : value;
}

Result<int64_t> ParseDecimalScaled(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::ParseError("empty decimal literal");
  bool negative = false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    negative = (s[0] == '-');
    i = 1;
  }
  constexpr int64_t kScale = 1000000000;  // 10^9
  int64_t int_part = 0;
  bool any_digits = false;
  for (; i < s.size() && s[i] != '.'; ++i) {
    char c = s[i];
    if (c < '0' || c > '9') {
      return Status::ParseError("invalid digit in decimal literal: '" +
                                std::string(s) + "'");
    }
    any_digits = true;
    int digit = c - '0';
    if (int_part > (std::numeric_limits<int64_t>::max() / kScale - digit) / 10) {
      return Status::ParseError("decimal literal out of range: '" +
                                std::string(s) + "'");
    }
    int_part = int_part * 10 + digit;
  }
  int64_t frac = 0;
  int64_t frac_scale = kScale;
  if (i < s.size() && s[i] == '.') {
    ++i;
    for (; i < s.size(); ++i) {
      char c = s[i];
      if (c < '0' || c > '9') {
        return Status::ParseError("invalid digit in decimal literal: '" +
                                  std::string(s) + "'");
      }
      any_digits = true;
      if (frac_scale > 1) {
        frac_scale /= 10;
        frac += (c - '0') * frac_scale;
      }
      // Digits beyond 9 fractional places are truncated; facet values in
      // schemas never need more precision than that.
    }
  }
  if (!any_digits) {
    return Status::ParseError("decimal literal without digits: '" +
                              std::string(s) + "'");
  }
  int64_t value = int_part * kScale + frac;
  return negative ? -value : value;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace xmlreval
